"""Reading and validating JSONL trace journals.

The journal a :class:`~repro.obs.tracer.Tracer` writes is a plain JSONL
stream: a ``trace`` header, then ``start``/``end`` records per span and
``point`` records for instant events.  This module is the read side --
used by ``tools/summarize_trace.py``, the CI schema check, and the tests
that assert a journal is well-formed even when the traced run failed.

A journal may also be a **concatenation** of several complete journals:
the parallel bench runner (``table1 --jobs N``) merges one self-contained
journal per worker into a single file.  Every ``trace`` header starts a
new *segment*, and the rules below hold per segment.

Journals whose path ends in ``.gz`` are gzip-compressed, transparently
on both sides: :func:`journal_open` is the one open helper the tracer's
write path and this module's read path share, so
``--trace run.jsonl.gz`` and ``tools/summarize_trace.py run.jsonl.gz``
just work (thousand-circuit corpora journals get large).

Well-formedness rules (checked by :func:`validate_events`):

* every line parses as a JSON object with a known ``ev`` type;
* each segment starts with a ``trace`` header, exactly one per segment
  (so the stream's first event is always a header);
* within a segment span ids are unique, and every ``end`` closes the
  innermost open ``start`` with the same id and name (strict LIFO
  nesting);
* every ``parent`` reference names a span that is open at that moment;
* timestamps never run backwards within a segment;
* no span is left open at the end of a segment.
"""

from __future__ import annotations

import json
import os

from repro.obs.tracer import JOURNAL_VERSION

#: Record types a journal may contain.
EVENT_TYPES = ("trace", "start", "end", "point")


def journal_open(path, mode="r"):
    """Open a journal path for text I/O, gzipping on a ``.gz`` suffix.

    ``mode`` is ``"r"`` or ``"w"``; the returned handle is always a
    text-mode file object with UTF-8 encoding.
    """
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class JournalError(ValueError):
    """A journal failed to parse or violated the nesting rules."""

    def __init__(self, problems):
        self.problems = list(problems)
        preview = "; ".join(self.problems[:3])
        more = len(self.problems) - 3
        if more > 0:
            preview += f"; ... {more} more"
        super().__init__(f"malformed trace journal: {preview}")


def _read_lines(source):
    if isinstance(source, (str, os.PathLike)):
        with journal_open(source, "r") as handle:
            return handle.readlines()
    if hasattr(source, "read"):
        return source.read().splitlines()
    return list(source)


def read_events(source):
    """Parse a journal into a list of event dicts.

    ``source`` is a path (``.gz`` paths are gunzipped transparently),
    an open text file, or an iterable of lines.  Raises
    :class:`JournalError` on the first unparseable line; use
    :func:`read_events_tolerant` to skip and count bad lines instead.
    """
    events = []
    for number, line in enumerate(_read_lines(source), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError([f"line {number}: invalid JSON ({exc.msg})"])
        if not isinstance(event, dict):
            raise JournalError([f"line {number}: not a JSON object"])
        events.append(event)
    return events


def read_events_tolerant(source):
    """Parse a journal, skipping unparseable lines instead of raising.

    Returns ``(events, skipped)`` where ``skipped`` is a list of
    one-line problem strings (``"line N: ..."``), one per line that was
    truncated, corrupt or not a JSON object.  A journal cut off
    mid-write (crashed run, interrupted copy) still yields everything
    before the tear; the caller decides whether the skips are fatal.
    """
    events = []
    skipped = []
    for number, line in enumerate(_read_lines(source), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            skipped.append(f"line {number}: invalid JSON ({exc.msg})")
            continue
        if not isinstance(event, dict):
            skipped.append(f"line {number}: not a JSON object")
            continue
        events.append(event)
    return events, skipped


def split_segments(events):
    """Split a (possibly concatenated) journal into per-header segments.

    Returns ``[(first_position, [events...]), ...]`` where positions are
    1-based indices into the full stream.  Every ``trace`` header opens
    a new segment; events before the first header form a (malformed)
    headerless segment that :func:`validate_events` reports.
    """
    segments = []
    current = None
    for position, event in enumerate(events, start=1):
        if event.get("ev") == "trace" or current is None:
            current = []
            segments.append((position, current))
        current.append(event)
    return segments


def validate_events(events):
    """Check the journal rules; returns a list of problem strings."""
    if not events:
        return ["journal is empty"]
    problems = []
    for first_position, segment in split_segments(events):
        problems.extend(_validate_segment(segment, first_position))
    return problems


def _validate_segment(events, first_position):
    """Journal rules over one self-contained segment."""
    problems = []
    open_spans = []  # (id, name) innermost last
    open_ids = set()
    seen_ids = set()
    last_t = None
    for position, event in enumerate(events, start=first_position):
        kind = event.get("ev")
        if kind not in EVENT_TYPES:
            problems.append(f"event {position}: unknown type {kind!r}")
            continue
        if position == first_position:
            if kind != "trace":
                problems.append(
                    f"event {position}: journal segment must start with "
                    f"a 'trace' header"
                )
            elif event.get("version") != JOURNAL_VERSION:
                problems.append(
                    f"event {position}: unsupported journal version "
                    f"{event.get('version')!r}"
                )
            if kind == "trace":
                continue
        t = event.get("t")
        if not isinstance(t, (int, float)):
            problems.append(f"event {position}: missing timestamp 't'")
        else:
            if last_t is not None and t < last_t:
                problems.append(
                    f"event {position}: timestamp {t} runs backwards"
                )
            last_t = t
        parent = event.get("parent")
        if parent is not None and parent not in open_ids:
            problems.append(
                f"event {position}: parent {parent} is not an open span"
            )
        if kind == "start":
            span_id = event.get("id")
            name = event.get("name")
            if span_id is None or name is None:
                problems.append(f"event {position}: start lacks id/name")
                continue
            if span_id in seen_ids:
                problems.append(
                    f"event {position}: duplicate span id {span_id}"
                )
            seen_ids.add(span_id)
            open_spans.append((span_id, name))
            open_ids.add(span_id)
        elif kind == "end":
            span_id = event.get("id")
            name = event.get("name")
            if not open_spans:
                problems.append(
                    f"event {position}: end of {name!r} with no open span"
                )
                continue
            top_id, top_name = open_spans[-1]
            if span_id != top_id:
                problems.append(
                    f"event {position}: end of span {span_id} ({name!r}) "
                    f"but innermost open span is {top_id} ({top_name!r})"
                )
                # Recover so one mismatch does not cascade.
                open_spans = [
                    entry for entry in open_spans if entry[0] != span_id
                ]
                open_ids.discard(span_id)
                continue
            if name != top_name:
                problems.append(
                    f"event {position}: span {span_id} started as "
                    f"{top_name!r} but ended as {name!r}"
                )
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(
                    f"event {position}: end of {name!r} lacks a duration"
                )
            open_spans.pop()
            open_ids.discard(span_id)
    for span_id, name in open_spans:
        problems.append(f"span {span_id} ({name!r}) never ended")
    return problems


def load_journal(source):
    """Read and validate; returns the events or raises JournalError."""
    events = read_events(source)
    problems = validate_events(events)
    if problems:
        raise JournalError(problems)
    return events


def span_tree(events):
    """Nest end records as ``(record, [children...])`` trees.

    Returns the list of root spans in end order.  Useful for tests that
    assert the recorded hierarchy (run -> module -> sat_attempt).  A
    concatenated journal is handled per segment (span ids are only
    unique within one), roots accumulating across segments in order.
    """
    roots = []
    for _position, segment in split_segments(events):
        parents = {}
        for event in segment:
            if event.get("ev") == "start":
                parents[event["id"]] = event.get("parent")
        nodes = {}
        ends = [e for e in segment if e.get("ev") == "end"]
        for event in ends:
            nodes[event["id"]] = (event, [])
        for event in ends:
            parent = parents.get(event["id"])
            if parent is not None and parent in nodes:
                nodes[parent][1].append(nodes[event["id"]])
            else:
                roots.append(nodes[event["id"]])
    return roots
