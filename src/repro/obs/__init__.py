"""``repro.obs`` -- tracing, metrics and the run journal.

The paper's argument is quantitative (per-output SAT-CSC instances are
orders of magnitude smaller than the monolithic formula), so the
pipeline needs per-stage visibility: where the wall clock goes, how big
every formula was, how many states each construction explored.  This
package is that layer, with zero third-party dependencies:

* :mod:`repro.obs.tracer` -- hierarchical spans
  (``run -> build_state_graph -> module -> project/encode/solve/propagate
  -> sat_attempt``) with an optional JSONL journal; installed process-
  wide like the fault registry, and a near-no-op when disabled;
* :mod:`repro.obs.metrics` -- :class:`Counters`, the typed counter bag
  carried by :class:`~repro.sat.solver.SolveResult`,
  :class:`~repro.runtime.report.RunReport` and
  :class:`~repro.bench.runner.MethodRow` alike;
* :mod:`repro.obs.timer` -- :class:`Stopwatch`, the one
  ``time.perf_counter()`` pattern, shared by every engine and driver;
* :mod:`repro.obs.journal` -- reading/validating JSONL journals
  (gzip-transparent via :func:`journal_open`);
* :mod:`repro.obs.profile` -- per-phase aggregation behind the CLI's
  ``--metrics``/``--profile-top`` and ``tools/summarize_trace.py``;
* :mod:`repro.obs.analyze` -- span trees, self-time vs child-time,
  per-module attribution and critical-path extraction
  (``--metrics-tree``, ``tools/analyze_trace.py``);
* :mod:`repro.obs.export` -- folded-stack flamegraph lines, Chrome
  trace-event JSON and Prometheus text exposition
  (``--metrics-prom``).

Like :mod:`repro.runtime.faults`, this package is a dependency *leaf*:
it imports nothing from the rest of :mod:`repro`, so every layer down to
the SAT engines can use it without cycles.
"""

from repro.obs.analyze import (
    Attribution,
    SpanNode,
    build_forest,
    critical_path,
    dispatch_summary,
    format_attribution,
    format_critical_path,
    format_tree,
    module_attribution,
    name_attribution,
    verify_forest,
    walk_forest,
)
from repro.obs.export import (
    chrome_trace,
    folded_stacks,
    prometheus_text,
    validate_chrome_trace,
    validate_folded,
    validate_prometheus_text,
    write_chrome_trace,
)
from repro.obs.journal import (
    JournalError,
    journal_open,
    load_journal,
    read_events,
    read_events_tolerant,
    span_tree,
    validate_events,
)
from repro.obs.metrics import (
    COUNTER_GLOSSARY,
    DERIVED_GLOSSARY,
    GAUGE_GLOSSARY,
    HISTOGRAM_BUCKETS,
    HISTOGRAM_GLOSSARY,
    Counters,
    Gauge,
    Histogram,
)
from repro.obs.profile import (
    SpanStats,
    aggregate_events,
    counter_totals,
    format_counters,
    format_profile,
    merge_stats,
    stats_as_dict,
    top_spans,
    with_derived,
)
from repro.obs.timer import Stopwatch
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    active,
    add,
    enabled,
    event,
    gauge,
    install,
    observe,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "Attribution",
    "COUNTER_GLOSSARY",
    "Counters",
    "DERIVED_GLOSSARY",
    "GAUGE_GLOSSARY",
    "Gauge",
    "HISTOGRAM_BUCKETS",
    "HISTOGRAM_GLOSSARY",
    "Histogram",
    "JournalError",
    "NULL_SPAN",
    "Span",
    "SpanNode",
    "SpanStats",
    "Stopwatch",
    "Tracer",
    "active",
    "add",
    "aggregate_events",
    "build_forest",
    "chrome_trace",
    "counter_totals",
    "critical_path",
    "dispatch_summary",
    "enabled",
    "event",
    "folded_stacks",
    "format_attribution",
    "format_counters",
    "format_critical_path",
    "format_profile",
    "format_tree",
    "gauge",
    "install",
    "journal_open",
    "load_journal",
    "merge_stats",
    "module_attribution",
    "name_attribution",
    "observe",
    "prometheus_text",
    "read_events",
    "read_events_tolerant",
    "span",
    "span_tree",
    "stats_as_dict",
    "top_spans",
    "tracing",
    "uninstall",
    "validate_chrome_trace",
    "validate_events",
    "validate_folded",
    "validate_prometheus_text",
    "verify_forest",
    "walk_forest",
    "with_derived",
    "write_chrome_trace",
]
