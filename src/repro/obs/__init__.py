"""``repro.obs`` -- tracing, metrics and the run journal.

The paper's argument is quantitative (per-output SAT-CSC instances are
orders of magnitude smaller than the monolithic formula), so the
pipeline needs per-stage visibility: where the wall clock goes, how big
every formula was, how many states each construction explored.  This
package is that layer, with zero third-party dependencies:

* :mod:`repro.obs.tracer` -- hierarchical spans
  (``run -> build_state_graph -> module -> project/encode/solve/propagate
  -> sat_attempt``) with an optional JSONL journal; installed process-
  wide like the fault registry, and a near-no-op when disabled;
* :mod:`repro.obs.metrics` -- :class:`Counters`, the typed counter bag
  carried by :class:`~repro.sat.solver.SolveResult`,
  :class:`~repro.runtime.report.RunReport` and
  :class:`~repro.bench.runner.MethodRow` alike;
* :mod:`repro.obs.timer` -- :class:`Stopwatch`, the one
  ``time.perf_counter()`` pattern, shared by every engine and driver;
* :mod:`repro.obs.journal` -- reading/validating JSONL journals;
* :mod:`repro.obs.profile` -- per-phase aggregation behind the CLI's
  ``--metrics``/``--profile-top`` and ``tools/summarize_trace.py``.

Like :mod:`repro.runtime.faults`, this package is a dependency *leaf*:
it imports nothing from the rest of :mod:`repro`, so every layer down to
the SAT engines can use it without cycles.
"""

from repro.obs.journal import (
    JournalError,
    load_journal,
    read_events,
    span_tree,
    validate_events,
)
from repro.obs.metrics import COUNTER_GLOSSARY, Counters
from repro.obs.profile import (
    SpanStats,
    aggregate_events,
    counter_totals,
    format_counters,
    format_profile,
    merge_stats,
    stats_as_dict,
    top_spans,
)
from repro.obs.timer import Stopwatch
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    active,
    add,
    enabled,
    event,
    install,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "COUNTER_GLOSSARY",
    "Counters",
    "JournalError",
    "NULL_SPAN",
    "Span",
    "SpanStats",
    "Stopwatch",
    "Tracer",
    "active",
    "add",
    "aggregate_events",
    "counter_totals",
    "enabled",
    "event",
    "format_counters",
    "format_profile",
    "install",
    "load_journal",
    "merge_stats",
    "read_events",
    "span",
    "span_tree",
    "stats_as_dict",
    "top_spans",
    "tracing",
    "uninstall",
    "validate_events",
]
