"""Generalised C-element realisation of next-state functions.

The single-cover form (`repro.logic.extract`) implements each non-input
as one complex gate computing its next value.  The classic alternative
for speed-independent circuits realises each signal as a *generalised
C-element*: a SET network that pulls high while the signal is excited to
rise, a RESET network that pulls low while it is excited to fall, and a
state-holding element in between.  The SET cover only needs to cover the
rising excitation region (offset: every state where the signal must not
be driven high), which is often much smaller than the full next-state
function -- the area trade-off async designers actually weigh.
"""

from __future__ import annotations

from repro.logic.espresso import espresso
from repro.stg.model import FALL, RISE


def excitation_regions(graph, signal):
    """ON/OFF minterm sets for a signal's SET and RESET networks.

    SET must hold exactly on the rising excitation region (codes where
    the signal is excited to rise); it must be off wherever the signal is
    stable low or excited to fall (driving there would fight the reset
    or glitch).  States where the signal is high and stable are don't
    cares for SET (the C-element holds).  RESET is the mirror image.

    Returns
    -------
    (set_onset, set_offset, reset_onset, reset_offset)
        Lists of code tuples.
    """
    set_onset, set_offset = set(), set()
    reset_onset, reset_offset = set(), set()
    for state in graph.states():
        code = graph.code_of(state)
        direction = graph.excitation(state).get(signal)
        value = graph.value(state, signal)
        if direction == RISE:
            set_onset.add(code)
            reset_offset.add(code)
        elif direction == FALL:
            reset_onset.add(code)
            set_offset.add(code)
        elif value == 0:
            set_offset.add(code)
            # reset may stay asserted while the signal is stable low.
        else:
            reset_offset.add(code)
    # CSC guarantees the regions are consistent; overlapping on/off sets
    # would mean the graph was not actually solved.
    for onset, offset, network in (
        (set_onset, set_offset, "SET"),
        (reset_onset, reset_offset, "RESET"),
    ):
        clash = onset & offset
        if clash:
            raise ValueError(
                f"{network} network of {signal!r} is contradictory on "
                f"{len(clash)} code(s); the graph does not satisfy CSC"
            )
    return (
        sorted(set_onset), sorted(set_offset),
        sorted(reset_onset), sorted(reset_offset),
    )


class CElementImplementation:
    """SET/RESET covers of one signal's generalised C-element."""

    def __init__(self, signal, set_cover, reset_cover):
        self.signal = signal
        self.set_cover = set_cover
        self.reset_cover = reset_cover

    @property
    def literals(self):
        return self.set_cover.literals + self.reset_cover.literals

    def __repr__(self):
        return (
            f"CElementImplementation({self.signal!r}, "
            f"set={self.set_cover.literals} lits, "
            f"reset={self.reset_cover.literals} lits)"
        )


def synthesize_celements(graph, signals=None):
    """Generalised C-element covers for each non-input signal.

    Parameters
    ----------
    graph:
        A CSC-satisfying state graph (e.g. a synthesis result's
        ``expanded``).
    signals:
        Signals to realise; defaults to all non-inputs.

    Returns
    -------
    (dict, int)
        ``implementations[signal] -> CElementImplementation`` and the
        total literal count across all SET and RESET networks.
    """
    chosen = sorted(graph.non_inputs) if signals is None else list(signals)
    n = len(graph.signals)
    implementations = {}
    for signal in chosen:
        set_on, set_off, reset_on, reset_off = excitation_regions(
            graph, signal
        )
        implementations[signal] = CElementImplementation(
            signal,
            espresso(set_on, set_off, n),
            espresso(reset_on, reset_off, n),
        )
    total = sum(impl.literals for impl in implementations.values())
    return implementations, total
