"""Static hazard analysis of two-level covers.

The paper hands hazard removal off to known techniques (Lavagno et al.
DAC'91); we provide the detection half: a static-1 hazard exists when two
adjacent ON minterms (Hamming distance one) are not covered by any single
cube, so the output may glitch while the input crosses between them.
Covering such a pair with a consensus cube removes the hazard.
"""

from __future__ import annotations

from repro.logic.cover import DASH, Cube


def static_hazards(cover, onset):
    """Static-1 hazard pairs of ``cover`` over the given ON-set.

    Parameters
    ----------
    cover:
        A :class:`~repro.logic.cover.Cover` implementing the function.
    onset:
        The ON-set minterms the function must hold 1 across.

    Returns
    -------
    list
        Pairs of adjacent ON minterms not covered by a common cube.
    """
    onset = [tuple(m) for m in onset]
    present = set(onset)
    hazards = []
    for m in onset:
        for i in range(len(m)):
            neighbour = m[:i] + (1 - m[i],) + m[i + 1:]
            if neighbour <= m or neighbour not in present:
                continue
            if not any(
                cube.contains_minterm(m) and cube.contains_minterm(neighbour)
                for cube in cover
            ):
                hazards.append((m, neighbour))
    return hazards


def hazard_free_patch(cover, hazards):
    """Consensus cubes that cover each hazard pair.

    Returns a list of :class:`Cube` objects; appending them to the cover
    removes the corresponding static-1 hazards (at an area cost, as in the
    hazard-removal literature the paper cites).
    """
    patches = []
    for a, b in hazards:
        positions = [
            DASH if bit_a != bit_b else bit_a for bit_a, bit_b in zip(a, b)
        ]
        cube = Cube(positions)
        if cube not in patches:
            patches.append(cube)
    return patches
