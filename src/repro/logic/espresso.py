"""An espresso-like two-level minimizer.

Produces a prime irredundant cover of an incompletely specified function
given its ON-set and OFF-set minterms (everything else is don't-care --
the natural shape for state-graph logic, where unreachable codes are
free).  The loop is the classic espresso recipe: EXPAND each cube to a
prime against the OFF-set, extract an IRREDUNDANT subset, REDUCE cubes to
the smallest cube covering their essential minterms, and iterate while
the literal count improves.

Internally cubes are ``(value, care)`` integer bit masks, which keeps the
inner containment checks O(1); the public API speaks
:class:`~repro.logic.cover.Cube`/:class:`~repro.logic.cover.Cover`.
"""

from __future__ import annotations

from repro.logic.cover import DASH, Cover, Cube

_MAX_ROUNDS = 6


def espresso(onset, offset, n):
    """Minimise the function with the given ON-set and OFF-set.

    Parameters
    ----------
    onset / offset:
        Iterables of minterms -- tuples of 0/1 of length ``n``.  The two
        sets must be disjoint; minterms in neither are don't-cares.
    n:
        Number of input variables.

    Returns
    -------
    Cover
        A prime irredundant cover of the ON-set that avoids the OFF-set.
    """
    on_ints = sorted({_to_int(bits, n) for bits in onset})
    off_ints = sorted({_to_int(bits, n) for bits in offset})
    overlap = set(on_ints) & set(off_ints)
    if overlap:
        raise ValueError(
            f"ON-set and OFF-set overlap on {len(overlap)} minterm(s)"
        )
    if not on_ints:
        return Cover(n)

    full_mask = (1 << n) - 1
    cubes = [(m, full_mask) for m in on_ints]

    best = None
    for round_index in range(_MAX_ROUNDS):
        order = _var_order(n, round_index)
        cubes = _expand(cubes, off_ints, order)
        cubes = _remove_covered(cubes)
        cubes = _irredundant(cubes, on_ints)
        cost = _cost(cubes)
        if best is None or cost < best[0]:
            best = (cost, list(cubes))
        else:
            break
        cubes = _reduce(cubes, on_ints, full_mask)
    cubes = best[1]
    return Cover(n, (_to_cube(value, care, n) for value, care in cubes))


def verify_cover(cover, onset, offset):
    """Check a cover implements the incompletely specified function.

    Returns a list of human-readable problems (empty when correct): ON-set
    minterms left uncovered and OFF-set minterms wrongly covered.
    """
    problems = []
    for bits in onset:
        if not cover.contains_minterm(bits):
            problems.append(f"ON minterm {bits} not covered")
    for bits in offset:
        if cover.contains_minterm(bits):
            problems.append(f"OFF minterm {bits} covered")
    return problems


# -- bit-mask internals ------------------------------------------------------


def _to_int(bits, n):
    if len(bits) != n:
        raise ValueError(f"minterm {bits} does not have {n} bits")
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"minterm {bits} has non-binary entry")
        if bit:
            value |= 1 << i
    return value


def _to_cube(value, care, n):
    positions = []
    for i in range(n):
        bit = 1 << i
        if care & bit:
            positions.append(1 if value & bit else 0)
        else:
            positions.append(DASH)
    return Cube(positions)


def _var_order(n, round_index):
    """Rotate the expansion order between rounds to escape local minima."""
    order = list(range(n))
    if n:
        shift = round_index % n
        order = order[shift:] + order[:shift]
    return order


def _intersects_offset(value, care, off_ints):
    for m in off_ints:
        if not (m ^ value) & care:
            return True
    return False


def _expand(cubes, off_ints, order):
    """Raise every cube to a prime against the OFF-set."""
    expanded = []
    for value, care in cubes:
        for i in order:
            bit = 1 << i
            if not care & bit:
                continue
            new_care = care & ~bit
            if not _intersects_offset(value & new_care, new_care, off_ints):
                care = new_care
                value &= new_care
        expanded.append((value, care))
    return expanded


def _covers(a, b):
    """Cube ``a`` covers cube ``b``."""
    value_a, care_a = a
    value_b, care_b = b
    return not (care_a & ~care_b) and not ((value_a ^ value_b) & care_a)


def _remove_covered(cubes):
    result = []
    for i, cube in enumerate(cubes):
        redundant = False
        for j, other in enumerate(cubes):
            if j == i:
                continue
            if other == cube:
                if j < i:  # keep only the first duplicate
                    redundant = True
                    break
                continue
            if _covers(other, cube):
                redundant = True
                break
        if not redundant:
            result.append(cube)
    return result


def _coverage(cubes, on_ints):
    """For each ON minterm, the indices of cubes containing it."""
    table = {}
    for m in on_ints:
        covering = [
            index
            for index, (value, care) in enumerate(cubes)
            if not (m ^ value) & care
        ]
        if not covering:
            raise AssertionError(
                f"minimizer invariant broken: ON minterm {m} uncovered"
            )
        table[m] = covering
    return table


def _irredundant(cubes, on_ints):
    """Greedy minimal subset: essentials first, then largest gain."""
    table = _coverage(cubes, on_ints)
    chosen = set()
    for m, covering in table.items():
        if len(covering) == 1:
            chosen.add(covering[0])
    uncovered = {
        m for m, covering in table.items()
        if not any(index in chosen for index in covering)
    }
    while uncovered:
        gains = {}
        for m in uncovered:
            for index in table[m]:
                gains[index] = gains.get(index, 0) + 1
        # Largest gain; ties broken by fewer literals (more dashes).
        best_index = max(
            gains,
            key=lambda index: (gains[index], -_bit_count(cubes[index][1])),
        )
        chosen.add(best_index)
        uncovered = {
            m for m in uncovered
            if best_index not in table[m]
        }
    return [cube for index, cube in enumerate(cubes) if index in chosen]


def _reduce(cubes, on_ints, full_mask):
    """Shrink each cube onto the ON minterms it alone is responsible for.

    Processed sequentially so the cover property is preserved: a cube only
    sheds minterms that some *current* other cube still covers.
    """
    current = list(cubes)
    for index in range(len(current)):
        value, care = current[index]
        mine = []
        for m in on_ints:
            if (m ^ value) & care:
                continue
            if not any(
                not (m ^ ov) & oc
                for j, (ov, oc) in enumerate(current)
                if j != index
            ):
                mine.append(m)
        if mine:
            current[index] = _supercube(mine, full_mask)
    return current


def _supercube(minterms, full_mask):
    first = minterms[0]
    diff = 0
    for m in minterms[1:]:
        diff |= first ^ m
    care = full_mask & ~diff
    return (first & care, care)


def _cost(cubes):
    """(total literals, cube count): the comparison key between rounds."""
    literals = sum(_bit_count(care) for _value, care in cubes)
    return (literals, len(cubes))


def _bit_count(x):
    return bin(x).count("1")
