"""Cubes and covers in positional notation.

A cube over ``n`` variables is a tuple of ``n`` entries drawn from
``{0, 1, DASH}``: 0 and 1 are literals, :data:`DASH` means the variable is
absent.  A cover is an ordered list of cubes implementing the union of
their minterm sets.
"""

from __future__ import annotations

#: "Don't care" position marker within a cube.
DASH = 2

_CHARS = {0: "0", 1: "1", DASH: "-"}
_VALUES = {"0": 0, "1": 1, "-": DASH, "2": DASH}


class Cube:
    """An immutable product term in positional notation.

    >>> Cube.parse("1-0").literals
    2
    """

    __slots__ = ("positions",)

    def __init__(self, positions):
        positions = tuple(positions)
        for p in positions:
            if p not in (0, 1, DASH):
                raise ValueError(f"bad cube entry {p!r}")
        object.__setattr__(self, "positions", positions)

    def __setattr__(self, name, value):
        raise AttributeError("Cube is immutable")

    def __reduce__(self):
        # Immutability blocks pickle's default slot restore; rebuild
        # through the constructor instead.
        return (Cube, (self.positions,))

    @classmethod
    def parse(cls, text):
        """Parse ``"1-0"`` style positional notation."""
        try:
            return cls(_VALUES[c] for c in text)
        except KeyError as exc:
            raise ValueError(f"bad cube character in {text!r}") from exc

    @classmethod
    def full(cls, n):
        """The universal cube (all dashes) over ``n`` variables."""
        return cls([DASH] * n)

    @classmethod
    def from_minterm(cls, bits):
        """A cube with every variable bound (a minterm)."""
        return cls(bits)

    @property
    def n(self):
        return len(self.positions)

    @property
    def literals(self):
        """Number of bound positions (the cube's literal count)."""
        return sum(1 for p in self.positions if p != DASH)

    def __getitem__(self, index):
        return self.positions[index]

    def __iter__(self):
        return iter(self.positions)

    def __len__(self):
        return len(self.positions)

    def __eq__(self, other):
        if isinstance(other, Cube):
            return self.positions == other.positions
        return NotImplemented

    def __hash__(self):
        return hash(self.positions)

    def __str__(self):
        return "".join(_CHARS[p] for p in self.positions)

    def __repr__(self):
        return f"Cube({str(self)!r})"

    # -- cube algebra ----------------------------------------------------

    def contains_minterm(self, bits):
        """True if the minterm lies inside this cube."""
        return all(
            p == DASH or p == bit for p, bit in zip(self.positions, bits)
        )

    def covers(self, other):
        """True if every minterm of ``other`` is inside ``self``."""
        return all(
            sp == DASH or sp == op
            for sp, op in zip(self.positions, other.positions)
        )

    def intersects(self, other):
        """True if the two cubes share at least one minterm."""
        return all(
            sp == DASH or op == DASH or sp == op
            for sp, op in zip(self.positions, other.positions)
        )

    def intersection(self, other):
        """The common sub-cube, or ``None`` if disjoint."""
        result = []
        for sp, op in zip(self.positions, other.positions):
            if sp == DASH:
                result.append(op)
            elif op == DASH or op == sp:
                result.append(sp)
            else:
                return None
        return Cube(result)

    def raised(self, index):
        """A copy with variable ``index`` freed to don't-care."""
        positions = list(self.positions)
        positions[index] = DASH
        return Cube(positions)

    def bound(self, index, value):
        """A copy with variable ``index`` set to ``value``."""
        positions = list(self.positions)
        positions[index] = value
        return Cube(positions)

    def size(self):
        """Number of minterms the cube contains."""
        return 2 ** sum(1 for p in self.positions if p == DASH)

    def minterms(self):
        """Iterate all contained minterms (use only for small cubes)."""
        free = [i for i, p in enumerate(self.positions) if p == DASH]
        base = [0 if p == DASH else p for p in self.positions]
        for mask in range(2 ** len(free)):
            bits = list(base)
            for bit_index, var_index in enumerate(free):
                bits[var_index] = (mask >> bit_index) & 1
            yield tuple(bits)

    def distance(self, other):
        """Number of positions where the cubes conflict (0/1 clash)."""
        return sum(
            1
            for sp, op in zip(self.positions, other.positions)
            if sp != DASH and op != DASH and sp != op
        )


class Cover:
    """An ordered list of cubes over a common variable count."""

    def __init__(self, n, cubes=()):
        self.n = n
        self.cubes = []
        for cube in cubes:
            self.append(cube)

    @classmethod
    def from_strings(cls, n, texts):
        return cls(n, (Cube.parse(t) for t in texts))

    def append(self, cube):
        if not isinstance(cube, Cube):
            cube = Cube(cube)
        if cube.n != self.n:
            raise ValueError(
                f"cube has {cube.n} variables, cover expects {self.n}"
            )
        self.cubes.append(cube)

    def __len__(self):
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def __getitem__(self, index):
        return self.cubes[index]

    def __eq__(self, other):
        if isinstance(other, Cover):
            return self.n == other.n and set(self.cubes) == set(other.cubes)
        return NotImplemented

    def contains_minterm(self, bits):
        return any(cube.contains_minterm(bits) for cube in self.cubes)

    def evaluate(self, bits):
        """0/1 value of the cover's function on a full input vector."""
        return 1 if self.contains_minterm(bits) else 0

    def intersects_cube(self, cube):
        return any(cube.intersects(c) for c in self.cubes)

    @property
    def literals(self):
        """Total literal count -- the paper's area metric."""
        return sum(cube.literals for cube in self.cubes)

    def without(self, index):
        """A copy with the cube at ``index`` removed."""
        return Cover(
            self.n,
            (c for i, c in enumerate(self.cubes) if i != index),
        )

    def __str__(self):
        return "\n".join(str(c) for c in self.cubes)

    def __repr__(self):
        return f"Cover(n={self.n}, cubes={len(self.cubes)})"
