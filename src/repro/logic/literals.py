"""Literal counting: the paper's implementation-area metric."""

from __future__ import annotations


def literal_count(cover):
    """Literals of one cover (the unfactored sum-of-products form)."""
    return cover.literals


def total_literals(covers):
    """Summed literal count over a ``signal -> Cover`` mapping."""
    return sum(cover.literals for cover in covers.values())
