"""Logic extraction from encoded state graphs.

Once the expanded state graph satisfies CSC, every non-input signal's
next-state function is well-defined on the reachable state codes: the
implied value while excited, the current value while stable (Section 3.5).
The unreachable codes are don't-cares, which is exactly the shape
:func:`repro.logic.espresso.espresso` minimises.
"""

from __future__ import annotations

from repro.logic.espresso import espresso


def next_state_tables(graph, signals=None):
    """ON/OFF minterm sets of each non-input signal's next-state function.

    Parameters
    ----------
    graph:
        A state graph satisfying CSC (e.g. the expanded graph produced by
        synthesis).  Codes are the function inputs.
    signals:
        Signals to extract; defaults to all non-inputs.

    Returns
    -------
    dict
        ``signal -> (onset, offset)`` where each set contains code tuples.

    Raises
    ------
    ValueError
        If some code implies both 0 and 1 for a signal -- a CSC violation.
    """
    chosen = sorted(graph.non_inputs) if signals is None else list(signals)
    tables = {}
    for signal in chosen:
        onset = set()
        offset = set()
        for state in graph.states():
            code = graph.code_of(state)
            if graph.implied_value(state, signal):
                onset.add(code)
            else:
                offset.add(code)
        clash = onset & offset
        if clash:
            raise ValueError(
                f"signal {signal!r} has contradictory implied values on "
                f"{len(clash)} code(s); the graph does not satisfy CSC"
            )
        tables[signal] = (sorted(onset), sorted(offset))
    return tables


def synthesize_logic(graph, signals=None):
    """Minimised single-output covers for each non-input signal.

    This mirrors the paper's use of ``espresso -Dso -S1``: every output is
    minimised separately and the area is the summed literal count of the
    unfactored covers.

    Returns
    -------
    (dict, int)
        ``covers[signal] -> Cover`` and the total literal count.
    """
    n = len(graph.signals)
    covers = {}
    for signal, (onset, offset) in next_state_tables(graph, signals).items():
        covers[signal] = espresso(onset, offset, n)
    total = sum(cover.literals for cover in covers.values())
    return covers, total
