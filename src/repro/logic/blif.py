"""BLIF netlist export.

BLIF (Berkeley Logic Interchange Format) is the format the SIS tools the
paper built on exchanged logic in; emitting it makes the synthesised
controllers consumable by the classic downstream flow (technology
mapping, hazard-aware decomposition) and by modern tools that still read
BLIF (ABC, Yosys).

Each non-input signal becomes one ``.names`` table computing its
next-state function; the feedback (output back to input) is what makes
the netlist an asynchronous circuit rather than a combinational block,
so every non-input appears both as a table output and as a table input.
"""

from __future__ import annotations

from repro.logic.cover import DASH


def write_blif(covers, signals, inputs, model="circuit"):
    """Serialise next-state covers as a BLIF model.

    Parameters
    ----------
    covers:
        Mapping ``signal -> Cover``; every cover ranges over ``signals``.
    signals:
        The ordered input-variable tuple (the state graph's code order).
    inputs:
        The environment-driven signals.
    model:
        The ``.model`` name.

    Returns
    -------
    str
    """
    signals = list(signals)
    inputs = [s for s in signals if s in set(inputs)]
    non_inputs = [s for s in signals if s not in set(inputs)]
    missing = set(non_inputs) - set(covers)
    if missing:
        raise ValueError(f"covers missing for: {sorted(missing)}")

    lines = [f".model {model}"]
    lines.append(".inputs " + " ".join(inputs))
    lines.append(".outputs " + " ".join(non_inputs))
    for signal in non_inputs:
        cover = covers[signal]
        if cover.n != len(signals):
            raise ValueError(
                f"cover for {signal!r} ranges over {cover.n} variables, "
                f"expected {len(signals)}"
            )
        # Feedback: the signal's own current value is one of the fanins.
        lines.append(".names " + " ".join(signals) + f" {signal}_next")
        if not len(cover):
            lines.append("# constant 0")
        for cube in cover:
            pattern = "".join(
                "-" if position == DASH else str(position)
                for position in cube
            )
            lines.append(f"{pattern} 1")
        # In the speed-independent style the gate output *is* the signal;
        # BLIF needs an explicit buffer from the next-state net.
        lines.append(f".names {signal}_next {signal}")
        lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_synthesis_blif(result, stg_inputs, model=None):
    """BLIF for a synthesis result (modular, direct or baseline)."""
    if result.covers is None:
        raise ValueError(
            "synthesis result has no covers; run with minimize=True"
        )
    graph = result.expanded
    return write_blif(
        result.covers,
        graph.signals,
        stg_inputs,
        model=model or "async_circuit",
    )
