"""Human-readable rendering of covers as Boolean expressions."""

from __future__ import annotations

from repro.logic.cover import DASH


def cube_to_expression(cube, names):
    """Render one cube as a product term, e.g. ``a & !b``."""
    if len(names) != cube.n:
        raise ValueError(
            f"{len(names)} names for a cube over {cube.n} variables"
        )
    factors = []
    for name, position in zip(names, cube):
        if position == DASH:
            continue
        factors.append(name if position == 1 else f"!{name}")
    return " & ".join(factors) if factors else "1"


def cover_to_expression(cover, names):
    """Render a cover as a sum-of-products expression.

    >>> from repro.logic.cover import Cover
    >>> cover_to_expression(Cover.from_strings(2, ["1-", "01"]), ["a", "b"])
    'a | !a & b'
    """
    if not len(cover):
        return "0"
    return " | ".join(cube_to_expression(cube, names) for cube in cover)


def equations(covers, signals):
    """``signal = expression`` lines for a ``signal -> Cover`` mapping.

    ``signals`` is the ordered input-variable name tuple (the state
    graph's code signals).
    """
    lines = []
    for name in sorted(covers):
        expression = cover_to_expression(covers[name], list(signals))
        lines.append(f"{name} = {expression}")
    return lines
