"""Two-level logic: cube covers and an espresso-like minimizer.

The paper measures implementation area as the literal count of the
unfactored prime irredundant single-output covers produced by
``espresso -Dso -S1``.  This package is the stand-in: positional cubes and
covers (:mod:`repro.logic.cover`), an expand / irredundant / reduce
minimisation loop (:mod:`repro.logic.espresso`), logic extraction from
encoded state graphs (:mod:`repro.logic.extract`), and literal counting
(:mod:`repro.logic.literals`).
"""

from repro.logic.blif import write_blif, write_synthesis_blif
from repro.logic.celement import CElementImplementation, synthesize_celements
from repro.logic.cover import Cover, Cube
from repro.logic.format import cover_to_expression, cube_to_expression, equations
from repro.logic.espresso import espresso
from repro.logic.extract import next_state_tables, synthesize_logic
from repro.logic.literals import literal_count, total_literals
from repro.logic.hazards import static_hazards

__all__ = [
    "CElementImplementation",
    "Cover",
    "Cube",
    "cover_to_expression",
    "cube_to_expression",
    "equations",
    "espresso",
    "literal_count",
    "next_state_tables",
    "static_hazards",
    "synthesize_celements",
    "synthesize_logic",
    "total_literals",
    "write_blif",
    "write_synthesis_blif",
]
