"""Seeded circuit mutants for negative verification tests.

A checker that only ever sees correct circuits proves nothing; this
module manufactures *almost*-correct ones.  Three mutation operators
perturb a finished synthesis result the way real synthesis bugs would:

``flip-literal``
    Negate one bound literal of one cube -- the cover now covers the
    wrong half-space around that variable.
``drop-term``
    Delete one cube from a multi-cube cover -- part of the ON-set goes
    uncovered (a classic missing-product-term bug).
``swap-reset``
    Flip one gate's reset value -- the circuit powers up in a state the
    specification never visits.

Mutants are deterministic functions of the seed, so a failing mutant in
CI reproduces locally.  :func:`observable_check` classifies cover
mutants statically against the expanded graph's next-state tables:
``"equivalent"`` means the mutated cover still implements the exact
function on every reachable code, hence the closed loop is bit-for-bit
the original and *must* verify clean (the suite's false-positive
guard); ``"distinct"`` means the functions differ on a reachable code.
``swap-reset`` mutants are ``"unknown"``: a flipped internal reset can
settle back silently, so only the model check can judge them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.logic.cover import DASH, Cover, Cube

#: Mutation operators, in enumeration order.
MUTATION_KINDS = ("flip-literal", "drop-term", "swap-reset")


@dataclass(frozen=True)
class Mutant:
    """One mutated circuit: full cover map plus reset vector.

    ``covers`` always maps *every* non-input signal (unmutated gates
    keep their original :class:`~repro.logic.cover.Cover`), so a
    :class:`~repro.verify.circuit.Circuit` builds from it directly.
    """

    kind: str
    signal: str
    detail: str
    covers: dict = field(repr=False)
    initial_vector: tuple = field(repr=False)


def mutate_result(result, seed=0, kinds=MUTATION_KINDS, per_kind=2):
    """Deterministic mutants of a synthesis result.

    Samples up to ``per_kind`` mutation sites per operator from the
    result's covers with a PRNG seeded by ``seed``.  Results without
    covers (``minimize=False``) yield no mutants.
    """
    if result.covers is None:
        return []
    rng = random.Random(seed)
    signals = result.expanded.signals
    base = dict(result.covers)
    initial = tuple(result.expanded.code_of(result.expanded.initial))
    ordered = sorted(base.items(), key=lambda item: item[0])
    mutants = []

    if "flip-literal" in kinds:
        sites = [
            (signal, cube_index, var_index)
            for signal, cover in ordered
            for cube_index, cube in enumerate(cover)
            for var_index, position in enumerate(cube.positions)
            if position != DASH
        ]
        for signal, cube_index, var_index in _sample(rng, sites, per_kind):
            cover = base[signal]
            positions = list(cover[cube_index].positions)
            positions[var_index] = 1 - positions[var_index]
            covers = dict(base)
            covers[signal] = Cover(
                cover.n,
                [
                    Cube(positions) if index == cube_index else cube
                    for index, cube in enumerate(cover)
                ],
            )
            mutants.append(Mutant(
                "flip-literal", signal,
                f"gate {signal}: cube {cube_index} literal "
                f"{signals[var_index]} negated",
                covers, initial,
            ))

    if "drop-term" in kinds:
        sites = [
            (signal, cube_index)
            for signal, cover in ordered
            if len(cover) > 1
            for cube_index in range(len(cover))
        ]
        for signal, cube_index in _sample(rng, sites, per_kind):
            cover = base[signal]
            covers = dict(base)
            covers[signal] = Cover(
                cover.n,
                [
                    cube for index, cube in enumerate(cover)
                    if index != cube_index
                ],
            )
            mutants.append(Mutant(
                "drop-term", signal,
                f"gate {signal}: cube {cube_index} of "
                f"{len(cover)} dropped",
                covers, initial,
            ))

    if "swap-reset" in kinds:
        sites = [signal for signal, _cover in ordered]
        index_of = {s: i for i, s in enumerate(signals)}
        for signal in _sample(rng, sites, per_kind):
            index = index_of[signal]
            vector = (
                initial[:index] + (1 - initial[index],)
                + initial[index + 1:]
            )
            mutants.append(Mutant(
                "swap-reset", signal,
                f"gate {signal}: reset value flipped to {vector[index]}",
                dict(base), vector,
            ))

    return mutants


def observable_check(result, mutant):
    """Static classification of a mutant against the next-state tables.

    Returns ``"equivalent"`` when the mutated covers still implement
    the expanded graph's exact next-state functions on every reachable
    code (same reset, same gates on every state the closed loop can
    visit -- the mutant is the original circuit in behaviour),
    ``"distinct"`` when some gate's function differs on a reachable
    code, and ``"unknown"`` for reset mutants, which only the model
    check can judge.
    """
    from repro.logic.espresso import verify_cover
    from repro.logic.extract import next_state_tables

    if mutant.kind == "swap-reset":
        return "unknown"
    tables = next_state_tables(result.expanded)
    for signal, cover in mutant.covers.items():
        onset, offset = tables[signal]
        if verify_cover(cover, onset, offset):
            return "distinct"
    return "equivalent"


def mutant_circuit(result, stg_inputs, mutant):
    """``(Circuit, initial_vector)`` realising the mutant."""
    from repro.verify.circuit import Circuit

    circuit = Circuit(result.expanded.signals, stg_inputs, mutant.covers)
    return circuit, mutant.initial_vector


def _sample(rng, sites, count):
    """Up to ``count`` sites, chosen deterministically by ``rng``."""
    if not sites or count <= 0:
        return []
    return rng.sample(sites, min(count, len(sites)))
