"""Leveled circuit verification with counterexample traces.

The closed loop pairs the circuit's value vector with a state of the
specification's state graph Σ (the environment) and explores every
interleaving under the unbounded-gate-delay (speed-independent) model.
Three verification levels build on each other:

``csc``
    Static only: re-check complete state coding on the expanded state
    graph (two reachable states sharing a code must agree on every
    implied value).  No closed-loop traversal.
``conformance``
    Closed-loop I/O conformance: no *unexpected output* (the circuit
    excites an output Σ forbids), no *missing output* (with the state
    signals settled, an output Σ requires is not excited), no
    *deadlock* of the live specification.
``hazards``
    Conformance plus excitation persistency -- the semi-modularity /
    speed-independence condition: an excited gate must stay excited
    until it fires.  A persistency break on a specification output is
    an *output hazard* (an observable glitch under some delay
    assignment); on an inserted state signal it is a *semi-modularity*
    violation (an internal glitch that corrupts the encoding).

Every closed-loop violation carries a minimal counterexample: the BFS
firing sequence from the reset state to the violation, replayable
step by step with :func:`replay_trace` / :func:`replay_counterexample`.
"""

from __future__ import annotations

from collections import deque

#: Verification levels, weakest to strongest.
VERIFY_LEVELS = ("csc", "conformance", "hazards")

#: Counterexample kinds the checker can record.
CEX_KINDS = (
    "csc-conflict",
    "unexpected-output",
    "missing-output",
    "output-hazard",
    "semi-modularity",
    "deadlock",
)

#: Default cap on closed-loop states explored.
DEFAULT_STATE_LIMIT = 200_000

#: Budget checkpoint cadence (states popped between deadline polls).
_CHECK_EVERY = 128


class TraceReplayError(ValueError):
    """A counterexample trace that does not replay on the closed loop."""


class Counterexample:
    """One violation with a minimal reproduction trace.

    ``trace`` is the firing sequence (signal names) from the reset
    state; for persistency kinds its last element is the transition
    whose firing disabled ``signal``.  ``vector`` is the circuit value
    vector at the violating state (before the last firing for
    persistency kinds).  ``detail`` is a human-readable one-liner.
    """

    def __init__(self, kind, signal=None, trace=(), vector=None,
                 detail=None):
        if kind not in CEX_KINDS:
            raise ValueError(f"unknown counterexample kind {kind!r}")
        self.kind = kind
        self.signal = signal
        self.trace = tuple(trace)
        self.vector = tuple(vector) if vector is not None else None
        self.detail = detail

    def as_dict(self):
        """JSON-safe form (journal events, API responses, BENCH rows)."""
        return {
            "kind": self.kind,
            "signal": self.signal,
            "trace": list(self.trace),
            "vector": list(self.vector) if self.vector is not None else None,
            "detail": self.detail,
        }

    def __repr__(self):
        return (
            f"Counterexample({self.kind!r}, signal={self.signal!r}, "
            f"after {len(self.trace)} transitions)"
        )


class VerifyReport:
    """Outcome of one leveled verification pass.

    ``verdict`` is the tri-state the API surfaces: ``True`` when every
    requested check ran clean, ``False`` when a counterexample was
    recorded, ``None`` when the pass was skipped (``skipped`` holds the
    reason, e.g. ``"deadline"`` or ``"no-covers"``).
    """

    def __init__(self, level, checks=(), violations=(), states_explored=0,
                 truncated=False, skipped=None):
        if level not in VERIFY_LEVELS:
            raise ValueError(f"unknown verify level {level!r}")
        self.level = level
        self.checks = tuple(checks)
        self.violations = list(violations)
        self.states_explored = states_explored
        self.truncated = truncated
        self.skipped = skipped

    @property
    def verdict(self):
        if self.violations:
            return False
        if self.skipped is not None or self.truncated:
            # A capped clean pass proves nothing either way.
            return None
        return True

    @property
    def ok(self):
        return self.verdict is True

    def as_dict(self):
        """JSON-safe verdict document for API responses."""
        return {
            "level": self.level,
            "checks": list(self.checks),
            "verdict": self.verdict,
            "states": self.states_explored,
            "truncated": self.truncated,
            "skipped": self.skipped,
            "violations": [cex.as_dict() for cex in self.violations],
        }

    def __repr__(self):
        return (
            f"VerifyReport({self.level!r}, verdict={self.verdict}, "
            f"states={self.states_explored}, "
            f"violations={len(self.violations)})"
        )


class ClosedLoop:
    """The synchronous product of a gate-level circuit and its spec.

    States are ``(vector, spec_state)`` pairs; moves are input firings
    Σ enables, specification-output firings of excited gates (Σ
    advances with the circuit), and state-signal firings (Σ holds
    still).  One instance serves both the checker's BFS and trace
    replay, so a recorded counterexample replays on exactly the
    semantics that produced it.
    """

    def __init__(self, circuit, graph):
        spec_signals = set(graph.signals)
        unknown = spec_signals - set(circuit.signals)
        if unknown:
            raise ValueError(
                f"specification signals missing from circuit: "
                f"{sorted(unknown)}"
            )
        self.circuit = circuit
        self.graph = graph
        self.spec_signals = frozenset(spec_signals)
        self.state_signals = tuple(
            s for s in circuit.signals if s not in spec_signals
        )

    def initial(self, initial_vector=None):
        """The reset state ``(vector, graph.initial)``."""
        if initial_vector is None:
            initial_vector = reset_vector(self.circuit, self.graph)
        else:
            initial_vector = tuple(initial_vector)
            if len(initial_vector) != len(self.circuit.signals):
                raise ValueError("initial vector length mismatch")
        return (initial_vector, self.graph.initial)

    def spec_enabled(self, spec_state):
        """``signal -> target spec state`` for Σ's outgoing edges."""
        return {
            label[0]: target
            for label, target in self.graph.out_edges(spec_state)
        }

    def moves(self, state):
        """``(moves, excited, unexpected)`` at one closed-loop state.

        ``moves`` is a list of ``(fired, next_state)`` pairs;
        ``excited`` the excited gate names; ``unexpected`` the excited
        specification outputs Σ forbids (they are *not* moves -- the
        loop must not be explored past an illegal firing).
        """
        vector, spec_state = state
        circuit = self.circuit
        enabled = self.spec_enabled(spec_state)
        excited = circuit.excited(vector)
        moves = []
        unexpected = []
        for signal, target in enabled.items():
            if signal in circuit.inputs:
                moves.append((signal, (circuit.fire(vector, signal), target)))
        for signal in excited:
            next_vector = circuit.fire(vector, signal)
            if signal in self.spec_signals:
                target = enabled.get(signal)
                if target is None:
                    unexpected.append(signal)
                    continue
                moves.append((signal, (next_vector, target)))
            else:
                moves.append((signal, (next_vector, spec_state)))
        return moves, excited, unexpected

    def step(self, state, fired):
        """The successor after ``fired``; raises
        :class:`TraceReplayError` when ``fired`` is not a legal move."""
        for signal, successor in self.moves(state)[0]:
            if signal == fired:
                return successor
        raise TraceReplayError(
            f"{fired!r} is not enabled at the replayed state"
        )


def reset_vector(circuit, graph):
    """Reset values: the specification's initial code for the original
    signals, the gate fixpoint from zero for inserted state signals."""
    values = dict(zip(graph.signals, graph.code_of(graph.initial)))
    for signal in circuit.signals:
        values.setdefault(signal, 0)
    state_signals = [s for s in circuit.signals if s not in graph.signals]
    for _ in range(len(state_signals) + 1):
        vector = tuple(values[s] for s in circuit.signals)
        changed = False
        for signal in state_signals:
            value = circuit.next_value(signal, vector)
            if value != values[signal]:
                values[signal] = value
                changed = True
        if not changed:
            break
    return tuple(values[s] for s in circuit.signals)


def check_circuit(circuit, graph, level="hazards", budget=None,
                  max_states=DEFAULT_STATE_LIMIT, max_violations=10,
                  initial_vector=None):
    """Model-check ``circuit`` against environment ``graph`` (Σ).

    Parameters
    ----------
    circuit:
        A :class:`~repro.verify.circuit.Circuit`.
    graph:
        The specification's state graph over the *original* signals;
        its signal set must be a subset of the circuit's (the extras
        are the inserted state signals).
    level:
        ``"conformance"`` or ``"hazards"`` (the static ``"csc"`` level
        has no closed loop to explore; see :func:`verify_result`).
    budget:
        Optional :class:`~repro.runtime.budget.Budget`; the traversal
        polls its deadline and state cap cooperatively and lets
        :class:`~repro.runtime.budget.BudgetExhaustedError` propagate.
    max_states:
        Exploration cap; exceeding it sets ``report.truncated`` instead
        of raising, so a capped pass still reports what it saw.
    max_violations:
        Stop exploring after this many *distinct* ``(kind, signal)``
        violations; BFS order makes each recorded trace minimal.
    initial_vector:
        Reset values for every circuit signal; defaults to
        :func:`reset_vector`.

    Returns
    -------
    VerifyReport
        At the requested level, with one minimal
        :class:`Counterexample` per distinct violation.
    """
    if level not in ("conformance", "hazards"):
        raise ValueError(
            f"check_circuit level must be 'conformance' or 'hazards', "
            f"not {level!r}"
        )
    loop = ClosedLoop(circuit, graph)
    check_hazards = level == "hazards"
    initial = loop.initial(initial_vector)

    seen = {initial: None}  # state -> (previous state, fired signal)
    queue = deque([initial])
    violations = []
    flagged = set()  # (kind, signal) already recorded
    truncated = False
    pops = 0

    def trace_of(state):
        trace = []
        while seen[state] is not None:
            state, fired = seen[state]
            trace.append(fired)
        return tuple(reversed(trace))

    def record(kind, signal, vector, trace, detail):
        if (kind, signal) in flagged:
            return
        flagged.add((kind, signal))
        violations.append(
            Counterexample(kind, signal, trace, vector=vector, detail=detail)
        )

    while queue and len(violations) < max_violations:
        if len(seen) > max_states:
            truncated = True
            break
        if budget is not None:
            pops += 1
            if pops % _CHECK_EVERY == 0:
                budget.checkpoint("verify")
            budget.check_states(len(seen), point="verify")
        state = queue.popleft()
        vector, spec_state = state
        moves, excited, unexpected = loop.moves(state)

        for signal in unexpected:
            record(
                "unexpected-output", signal, vector, trace_of(state),
                f"circuit excites {signal} but the specification does "
                f"not enable it",
            )

        # Missing-output check: with the state signals settled, the
        # excited outputs must cover everything Σ enables.
        if all(s not in excited for s in loop.state_signals):
            for signal, _target in loop.spec_enabled(spec_state).items():
                if signal not in circuit.inputs and signal not in excited:
                    record(
                        "missing-output", signal, vector, trace_of(state),
                        f"state signals settled but {signal} is not "
                        f"excited although the specification requires it",
                    )

        if not moves:
            record(
                "deadlock", None, vector, trace_of(state),
                "closed loop is stuck although the specification is live",
            )
            continue

        excited_set = set(excited)
        for fired, successor in moves:
            if check_hazards:
                # Excitation persistency (semi-modularity): every gate
                # excited before the firing stays excited or fired.
                after = set(circuit.excited(successor[0]))
                for signal in excited_set:
                    if signal != fired and signal not in after:
                        kind = (
                            "output-hazard"
                            if signal in loop.spec_signals
                            else "semi-modularity"
                        )
                        record(
                            kind, signal, vector,
                            trace_of(state) + (fired,),
                            f"firing {fired} disables the excited "
                            f"gate {signal} without it firing",
                        )
            if successor not in seen:
                seen[successor] = (state, fired)
                queue.append(successor)

    return VerifyReport(
        level,
        checks=(
            ("conformance", "persistency")
            if check_hazards else ("conformance",)
        ),
        violations=violations,
        states_explored=len(seen),
        truncated=truncated,
    )


def verify_result(result, stg=None, level="hazards", budget=None,
                  max_states=DEFAULT_STATE_LIMIT, max_violations=10):
    """Verify a synthesis result at the requested level.

    Always re-checks complete state coding on the expanded graph (the
    static ``csc`` check); the closed-loop levels additionally build
    the gate-level circuit from the result's covers and model-check it
    against the result's own specification graph.

    ``stg`` supplies the input-signal set; when omitted it is derived
    from the specification graph's non-input partition.  Returns a
    :class:`VerifyReport`; a result without covers (``minimize=False``)
    skips the closed-loop levels with ``skipped="no-covers"``.
    """
    from repro.stategraph.csc import csc_conflicts
    from repro.verify.circuit import Circuit

    if level not in VERIFY_LEVELS:
        raise ValueError(
            f"level must be one of {VERIFY_LEVELS}, not {level!r}"
        )
    violations = []
    for first, second in csc_conflicts(result.expanded)[:max_violations]:
        violations.append(
            Counterexample(
                "csc-conflict",
                vector=result.expanded.code_of(first),
                detail=f"states {first} and {second} share a code but "
                       f"disagree on excited non-inputs",
            )
        )
    if level == "csc" or violations:
        return VerifyReport(level, checks=("csc",), violations=violations)

    if result.covers is None:
        return VerifyReport(
            level, checks=("csc",), skipped="no-covers"
        )
    inputs = stg.inputs if stg is not None else (
        set(result.graph.signals) - set(result.graph.non_inputs)
    )
    circuit = Circuit.from_synthesis(result, inputs)
    initial_vector = tuple(result.expanded.code_of(result.expanded.initial))
    closed = check_circuit(
        circuit, result.graph, level=level, budget=budget,
        max_states=max_states, max_violations=max_violations,
        initial_vector=initial_vector,
    )
    return VerifyReport(
        level,
        checks=("csc",) + closed.checks,
        violations=closed.violations,
        states_explored=closed.states_explored,
        truncated=closed.truncated,
    )


def replay_trace(circuit, graph, trace, initial_vector=None):
    """Fire ``trace`` from reset; returns the visited state list.

    Raises :class:`TraceReplayError` at the first step that is not a
    legal closed-loop move, so a trace that "replays" is certified
    legal move by move -- the trace-validity property the test suite
    pins.
    """
    loop = ClosedLoop(circuit, graph)
    state = loop.initial(initial_vector)
    states = [state]
    for fired in trace:
        state = loop.step(state, fired)
        states.append(state)
    return states


def replay_counterexample(circuit, graph, cex, initial_vector=None):
    """Re-manifest a counterexample step by step; ``True`` when the
    violation reproduces at the end of its trace.

    Persistency kinds replay all but the last firing, confirm the
    victim is excited, fire the last transition, and confirm the victim
    was disabled without firing; the conformance kinds replay the whole
    trace and re-evaluate their defining condition at the final state.
    Raises :class:`TraceReplayError` when the trace itself is illegal.
    """
    loop = ClosedLoop(circuit, graph)
    if cex.kind == "csc-conflict":
        raise TraceReplayError(
            "csc-conflict counterexamples are static (no firing trace)"
        )
    if cex.kind in ("output-hazard", "semi-modularity"):
        if not cex.trace:
            return False
        states = replay_trace(
            circuit, graph, cex.trace[:-1], initial_vector
        )
        vector, _ = states[-1]
        if cex.signal not in circuit.excited(vector):
            return False
        last = cex.trace[-1]
        if last == cex.signal:
            return False
        after, _ = loop.step(states[-1], last)
        return cex.signal not in circuit.excited(after)

    states = replay_trace(circuit, graph, cex.trace, initial_vector)
    vector, spec_state = states[-1]
    enabled = loop.spec_enabled(spec_state)
    excited = circuit.excited(vector)
    if cex.kind == "unexpected-output":
        return cex.signal in excited and cex.signal not in enabled
    if cex.kind == "missing-output":
        settled = all(s not in excited for s in loop.state_signals)
        return (
            settled
            and cex.signal in enabled
            and cex.signal not in circuit.inputs
            and cex.signal not in excited
        )
    if cex.kind == "deadlock":
        moves, _, _ = loop.moves(states[-1])
        return not moves
    raise TraceReplayError(f"unknown counterexample kind {cex.kind!r}")
