"""A gate-level circuit model built from two-level covers.

Each non-input signal is one complex gate computing its next-state
function from the current values of *all* signals (the standard
speed-independent implementation style the paper targets: the state
signals' covers feed back like any other signal).
"""

from __future__ import annotations


class Circuit:
    """Next-state functions over an ordered signal vector.

    Parameters
    ----------
    signals:
        Ordered tuple of all signal names; every cover's variables follow
        this order (it is the expanded state graph's code order).
    inputs:
        The environment-driven signals (no gate).
    covers:
        Mapping ``signal -> Cover`` for every non-input signal.
    """

    def __init__(self, signals, inputs, covers):
        self.signals = tuple(signals)
        self.inputs = frozenset(inputs)
        unknown = self.inputs - set(self.signals)
        if unknown:
            raise ValueError(f"inputs not in signal vector: {sorted(unknown)}")
        self.non_inputs = tuple(
            s for s in self.signals if s not in self.inputs
        )
        missing = set(self.non_inputs) - set(covers)
        if missing:
            raise ValueError(f"covers missing for: {sorted(missing)}")
        self.covers = {s: covers[s] for s in self.non_inputs}
        for signal, cover in self.covers.items():
            if cover.n != len(self.signals):
                raise ValueError(
                    f"cover for {signal!r} has {cover.n} variables, "
                    f"expected {len(self.signals)}"
                )
        self._index = {s: i for i, s in enumerate(self.signals)}

    @classmethod
    def from_synthesis(cls, result, stg_inputs):
        """Build from a synthesis result (modular, direct or baseline).

        ``stg_inputs`` are the original STG's input signals; everything
        else in the expanded graph -- outputs, internals, and inserted
        state signals -- gets a gate.
        """
        if result.covers is None:
            raise ValueError(
                "synthesis result has no covers; run with minimize=True"
            )
        return cls(result.expanded.signals, stg_inputs, result.covers)

    # -- evaluation ----------------------------------------------------------

    def index(self, signal):
        return self._index[signal]

    def next_value(self, signal, vector):
        """The gate output of ``signal`` for the given value vector."""
        return self.covers[signal].evaluate(vector)

    def excited(self, vector):
        """Non-input signals whose gate output differs from their value."""
        return [
            signal
            for signal in self.non_inputs
            if self.next_value(signal, vector) != vector[self._index[signal]]
        ]

    def fire(self, vector, signal):
        """The vector after ``signal`` toggles."""
        i = self._index[signal]
        return vector[:i] + (1 - vector[i],) + vector[i + 1:]

    def __repr__(self):
        return (
            f"Circuit(signals={len(self.signals)}, "
            f"gates={len(self.non_inputs)})"
        )
