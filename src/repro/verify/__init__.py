"""Gate-level verification of synthesised circuits.

The synthesis flow ends with two-level covers; this package closes the
loop: it builds a gate-level circuit model from the covers
(:mod:`repro.verify.circuit`) and model-checks it against the STG's
state graph acting as the environment
(:mod:`repro.verify.conformance`) -- the "circuit verification process"
the paper argues partitioning simplifies (Section 3.1).

The conformance check explores every interleaving of circuit and
environment transitions under the speed-independent (unbounded gate
delay) model and reports:

* **unexpected outputs** -- the circuit excites an output transition the
  specification does not allow;
* **output hazards** -- an excited non-input signal loses its excitation
  without firing (a glitch in any delay realisation);
* **missing outputs** -- with all internal signals settled, the circuit
  fails to excite an output the specification requires;
* **deadlocks** -- the closed loop gets stuck although the
  specification is live.
"""

from repro.verify.circuit import Circuit
from repro.verify.conformance import (
    ConformanceReport,
    Violation,
    check_conformance,
    verify_synthesis,
)

__all__ = [
    "Circuit",
    "ConformanceReport",
    "Violation",
    "check_conformance",
    "verify_synthesis",
]
