"""Gate-level verification of synthesised circuits.

The synthesis flow ends with two-level covers; this package closes the
loop: it builds a gate-level circuit model from the covers
(:mod:`repro.verify.circuit`) and model-checks it against the STG's
state graph acting as the environment
(:mod:`repro.verify.conformance`) -- the "circuit verification process"
the paper argues partitioning simplifies (Section 3.1).

The conformance check explores every interleaving of circuit and
environment transitions under the speed-independent (unbounded gate
delay) model and reports:

* **unexpected outputs** -- the circuit excites an output transition the
  specification does not allow;
* **output hazards** -- an excited non-input signal loses its excitation
  without firing (a glitch in any delay realisation);
* **missing outputs** -- with all internal signals settled, the circuit
  fails to excite an output the specification requires;
* **deadlocks** -- the closed loop gets stuck although the
  specification is live.

:mod:`repro.verify.checker` is the leveled engine behind all of it:
``csc`` (static coding re-check), ``conformance`` (the I/O checks
above) and ``hazards`` (conformance plus excitation persistency, the
semi-modularity / speed-independence condition), each violation
carrying a minimal, replayable counterexample trace.
:mod:`repro.verify.mutate` seeds circuit mutants (flipped cube
literals, dropped cover terms, swapped reset values) that the negative
test suite uses to prove the checker actually catches broken circuits.
"""

from repro.verify.checker import (
    CEX_KINDS,
    VERIFY_LEVELS,
    ClosedLoop,
    Counterexample,
    TraceReplayError,
    VerifyReport,
    check_circuit,
    replay_counterexample,
    replay_trace,
    reset_vector,
    verify_result,
)
from repro.verify.circuit import Circuit
from repro.verify.conformance import (
    ConformanceReport,
    Violation,
    check_conformance,
    verify_synthesis,
)
from repro.verify.mutate import (
    MUTATION_KINDS,
    Mutant,
    mutant_circuit,
    mutate_result,
    observable_check,
)

__all__ = [
    "CEX_KINDS",
    "Circuit",
    "ClosedLoop",
    "ConformanceReport",
    "Counterexample",
    "MUTATION_KINDS",
    "Mutant",
    "TraceReplayError",
    "VERIFY_LEVELS",
    "VerifyReport",
    "Violation",
    "check_circuit",
    "check_conformance",
    "mutant_circuit",
    "mutate_result",
    "observable_check",
    "replay_counterexample",
    "replay_trace",
    "reset_vector",
    "verify_result",
    "verify_synthesis",
]
