"""Closed-loop conformance checking: circuit against STG environment.

This is the historical front of the verifier, kept as a thin adapter
over :mod:`repro.verify.checker`: :func:`check_conformance` runs the
full ``hazards``-level pass (conformance plus excitation persistency --
exactly what it always checked) and re-shapes the leveled
:class:`~repro.verify.checker.VerifyReport` into the legacy
:class:`ConformanceReport`.  New code should call
:func:`~repro.verify.checker.check_circuit` /
:func:`~repro.verify.checker.verify_result` directly for level
selection, budget-aware traversal and replayable counterexamples.
"""

from __future__ import annotations

from repro.verify.checker import DEFAULT_STATE_LIMIT, check_circuit

_DEFAULT_STATE_LIMIT = DEFAULT_STATE_LIMIT


class Violation:
    """One conformance violation, with a reproduction trace."""

    def __init__(self, kind, signal, vector, trace):
        self.kind = kind
        self.signal = signal
        self.vector = vector
        self.trace = trace  # list of fired signal names from reset

    def __repr__(self):
        return (
            f"Violation({self.kind!r}, signal={self.signal!r}, "
            f"after {len(self.trace)} transitions)"
        )


class ConformanceReport:
    """Outcome of :func:`check_conformance`."""

    def __init__(self, violations, states_explored, deadlocks):
        self.violations = violations
        self.states_explored = states_explored
        self.deadlocks = deadlocks

    @property
    def conforms(self):
        return not self.violations and not self.deadlocks

    def __repr__(self):
        return (
            f"ConformanceReport(conforms={self.conforms}, "
            f"states={self.states_explored}, "
            f"violations={len(self.violations)}, "
            f"deadlocks={len(self.deadlocks)})"
        )


def verify_synthesis(result, stg, **kwargs):
    """Conformance-check a synthesis result against its own specification.

    Builds the gate-level circuit from the result's covers and explores
    it against the original state graph, starting from the expanded
    graph's reset code.
    """
    from repro.verify.circuit import Circuit

    circuit = Circuit.from_synthesis(result, stg.inputs)
    initial_vector = tuple(
        result.expanded.code_of(result.expanded.initial)
    )
    return check_conformance(
        circuit, result.graph, initial_vector=initial_vector, **kwargs
    )


def check_conformance(circuit, graph, max_states=_DEFAULT_STATE_LIMIT,
                      max_violations=10, initial_vector=None):
    """Model-check ``circuit`` against environment ``graph`` (Σ).

    Runs the ``hazards``-level closed-loop pass (I/O conformance plus
    excitation persistency) and reports in the legacy shape: both
    persistency kinds fold into ``"output-hazard"`` and deadlocks are
    returned as bare traces.  Exceeding ``max_states`` raises
    ``RuntimeError``, as it always has.

    Returns
    -------
    ConformanceReport
    """
    report = check_circuit(
        circuit, graph, level="hazards", max_states=max_states,
        max_violations=max_violations, initial_vector=initial_vector,
    )
    if report.truncated:
        raise RuntimeError(
            f"conformance exploration exceeded {max_states} states"
        )
    violations = []
    deadlocks = []
    for cex in report.violations:
        if cex.kind == "deadlock":
            deadlocks.append(list(cex.trace))
            continue
        kind = "output-hazard" if cex.kind == "semi-modularity" else cex.kind
        violations.append(
            Violation(kind, cex.signal, cex.vector, list(cex.trace))
        )
    return ConformanceReport(violations, report.states_explored, deadlocks)
