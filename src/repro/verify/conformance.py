"""Closed-loop conformance checking: circuit against STG environment.

The closed loop is explored as a transition system whose states pair the
circuit's value vector with a state of the specification's state graph Σ
(the environment).  Moves:

* an **input** transition fires when Σ enables it; both sides advance;
* an **original non-input** (output/internal of the STG) fires when its
  gate is excited; Σ must enable the corresponding transition, otherwise
  the circuit produced an *unexpected output*;
* an inserted **state signal** fires whenever its gate is excited; Σ does
  not move.

Speed independence is checked along every edge: a non-input that was
excited must remain excited (or be the signal that fired) afterwards --
otherwise some delay assignment glitches (*output hazard*).  In states
where every state signal has settled, the excited original non-inputs
must be exactly the ones Σ enables (*missing output* when one lacks).
"""

from __future__ import annotations

from collections import deque

_DEFAULT_STATE_LIMIT = 200_000


class Violation:
    """One conformance violation, with a reproduction trace."""

    def __init__(self, kind, signal, vector, trace):
        self.kind = kind
        self.signal = signal
        self.vector = vector
        self.trace = trace  # list of fired signal names from reset

    def __repr__(self):
        return (
            f"Violation({self.kind!r}, signal={self.signal!r}, "
            f"after {len(self.trace)} transitions)"
        )


class ConformanceReport:
    """Outcome of :func:`check_conformance`."""

    def __init__(self, violations, states_explored, deadlocks):
        self.violations = violations
        self.states_explored = states_explored
        self.deadlocks = deadlocks

    @property
    def conforms(self):
        return not self.violations and not self.deadlocks

    def __repr__(self):
        return (
            f"ConformanceReport(conforms={self.conforms}, "
            f"states={self.states_explored}, "
            f"violations={len(self.violations)}, "
            f"deadlocks={len(self.deadlocks)})"
        )


def verify_synthesis(result, stg, **kwargs):
    """Conformance-check a synthesis result against its own specification.

    Builds the gate-level circuit from the result's covers and explores
    it against the original state graph, starting from the expanded
    graph's reset code.
    """
    from repro.verify.circuit import Circuit

    circuit = Circuit.from_synthesis(result, stg.inputs)
    initial_vector = tuple(
        result.expanded.code_of(result.expanded.initial)
    )
    return check_conformance(
        circuit, result.graph, initial_vector=initial_vector, **kwargs
    )


def check_conformance(circuit, graph, max_states=_DEFAULT_STATE_LIMIT,
                      max_violations=10, initial_vector=None):
    """Model-check ``circuit`` against environment ``graph`` (Σ).

    Parameters
    ----------
    circuit:
        A :class:`~repro.verify.circuit.Circuit`.
    graph:
        The specification's state graph over the *original* signals; its
        signal set must be a subset of the circuit's (the extras are the
        inserted state signals).
    max_states:
        Exploration cap; exceeding it raises ``RuntimeError``.
    max_violations:
        Stop collecting after this many violations.
    initial_vector:
        Reset values for every circuit signal; defaults to the
        specification's initial code with the state-signal gates settled
        to a fixpoint from zero.

    Returns
    -------
    ConformanceReport
    """
    spec_signals = set(graph.signals)
    unknown = spec_signals - set(circuit.signals)
    if unknown:
        raise ValueError(
            f"specification signals missing from circuit: {sorted(unknown)}"
        )
    state_signals = [
        s for s in circuit.signals if s not in spec_signals
    ]
    spec_index = {s: circuit.index(s) for s in graph.signals}

    if initial_vector is None:
        # The specification's initial code, state signals at whatever
        # value makes their gates stable: the gate fixpoint from zero.
        initial_vector = _reset_vector(circuit, graph, spec_index)
    else:
        initial_vector = tuple(initial_vector)
        if len(initial_vector) != len(circuit.signals):
            raise ValueError("initial vector length mismatch")
    initial = (initial_vector, graph.initial)

    seen = {initial: None}  # state -> (previous state, fired signal)
    queue = deque([initial])
    violations = []
    deadlocks = []

    def trace_of(state):
        trace = []
        while seen[state] is not None:
            state, fired = seen[state]
            trace.append(fired)
        return list(reversed(trace))

    while queue and len(violations) < max_violations:
        vector, spec_state = queue.popleft()
        if len(seen) > max_states:
            raise RuntimeError(
                f"conformance exploration exceeded {max_states} states"
            )
        spec_enabled = {
            label[0]: (label, target)
            for label, target in graph.out_edges((spec_state))
        }
        excited = circuit.excited(vector)
        moves = []

        # Environment moves: inputs the specification may fire.
        for signal, (label, target) in spec_enabled.items():
            if signal not in circuit.inputs:
                continue
            moves.append((signal, circuit.fire(vector, signal), target))
        # Circuit moves: every excited gate.
        for signal in excited:
            next_vector = circuit.fire(vector, signal)
            if signal in spec_signals:
                entry = spec_enabled.get(signal)
                if entry is None:
                    violations.append(
                        Violation(
                            "unexpected-output", signal, vector,
                            trace_of((vector, spec_state)),
                        )
                    )
                    continue
                moves.append((signal, next_vector, entry[1]))
            else:
                moves.append((signal, next_vector, spec_state))

        # Missing-output check: with the state signals settled, excited
        # original non-inputs must cover everything the spec enables.
        settled = all(s not in excited for s in state_signals)
        if settled:
            for signal in spec_enabled:
                if signal not in circuit.inputs and signal not in excited:
                    violations.append(
                        Violation(
                            "missing-output", signal, vector,
                            trace_of((vector, spec_state)),
                        )
                    )

        if not moves:
            deadlocks.append(trace_of((vector, spec_state)))
            continue

        excited_set = set(excited)
        for fired, next_vector, next_spec in moves:
            # Semi-modularity: excited gates stay excited or fire.
            after = set(circuit.excited(next_vector))
            for signal in excited_set:
                if signal != fired and signal not in after:
                    violations.append(
                        Violation(
                            "output-hazard", signal, vector,
                            trace_of((vector, spec_state)) + [fired],
                        )
                    )
            successor = (next_vector, next_spec)
            if successor not in seen:
                seen[successor] = ((vector, spec_state), fired)
                queue.append(successor)

    return ConformanceReport(violations, len(seen), deadlocks)


def _reset_vector(circuit, graph, spec_index):
    """Initial values: spec code for original signals, gate fixpoint for
    state signals (starting from 0)."""
    values = {s: 0 for s in circuit.signals}
    code = graph.code_of(graph.initial)
    for signal, position in zip(graph.signals, range(len(graph.signals))):
        values[signal] = code[position]
    # Settle state signals: iterate their gates to a fixpoint (bounded).
    state_signals = [s for s in circuit.signals if s not in spec_index]
    for _ in range(len(state_signals) + 1):
        vector = tuple(values[s] for s in circuit.signals)
        changed = False
        for signal in state_signals:
            value = circuit.next_value(signal, vector)
            if value != values[signal]:
                values[signal] = value
                changed = True
        if not changed:
            break
    return tuple(values[s] for s in circuit.signals)
