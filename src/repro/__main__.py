"""Command-line synthesis driver.

Usage::

    python -m repro SPEC.g [options]

Reads an astg ``.g`` specification, synthesises it with the modular
partitioning method (or a chosen alternative), verifies the result at
gate level, and prints the next-state equations -- optionally writing a
BLIF netlist.

Options:

``--method modular|direct|lavagno``   synthesis method (default modular)
``--engine hybrid|dpll|cdcl|bdd``     SAT engine (default hybrid)
``--blif PATH``                       write the circuit netlist
``--no-verify``                       skip the conformance model check
``--quiet``                           only print the summary line
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import lavagno_synthesis
from repro.csc import direct_synthesis, modular_synthesis
from repro.logic import equations, write_synthesis_blif
from repro.stg import parse_g_file, validate_stg
from repro.verify import verify_synthesis

_METHODS = {
    "modular": modular_synthesis,
    "direct": direct_synthesis,
    "lavagno": lavagno_synthesis,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Synthesise an asynchronous circuit from an STG.",
    )
    parser.add_argument("spec", help="astg .g specification file")
    parser.add_argument(
        "--method", choices=sorted(_METHODS), default="modular"
    )
    parser.add_argument(
        "--engine", choices=["hybrid", "dpll", "cdcl", "bdd"],
        default="hybrid",
    )
    parser.add_argument("--blif", metavar="PATH", default=None)
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    stg = parse_g_file(args.spec)
    validate_stg(stg)

    synthesise = _METHODS[args.method]
    result = synthesise(stg, engine=args.engine)

    verified = ""
    if not args.no_verify:
        report = verify_synthesis(result, stg)
        if not report.conforms:
            print(
                f"error: synthesised circuit does not conform: "
                f"{report.violations[:3]}",
                file=sys.stderr,
            )
            return 1
        verified = ", conformance verified"

    print(
        f"{stg.name}: {result.initial_states} -> {result.final_states} "
        f"states, {result.initial_signals} -> {result.final_signals} "
        f"signals, {result.literals} literals, "
        f"{result.seconds:.2f}s ({args.method}/{args.engine}{verified})"
    )
    if not args.quiet:
        for line in equations(result.covers, result.expanded.signals):
            print(f"  {line}")

    if args.blif:
        text = write_synthesis_blif(result, stg.inputs, model=stg.name)
        with open(args.blif, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.blif}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
