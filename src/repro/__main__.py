"""Command-line synthesis driver.

Usage::

    python -m repro SPEC.g [options]     synthesise one specification
    python -m repro serve [options]      run the HTTP synthesis service
    python -m repro generate [options]   emit random live/safe STGs

The first positional argument selects the mode: the literal words
``serve`` and ``generate`` dispatch to the service front end
(:mod:`repro.service`) and the synthetic workload generator
(:mod:`repro.stg.generate`); anything else is a ``.g`` specification
path, preserving the historical single-spec invocation byte for byte.

Synthesis mode reads an astg ``.g`` specification, synthesises it with
the modular partitioning method (or a chosen alternative), verifies
the result at gate level, and prints the next-state equations --
optionally writing a BLIF netlist.  With ``--json`` the human
narration is replaced by one canonical ``repro-api/1`` response
document on stdout (the same bytes the service serves), leaving exit
codes and stderr diagnostics untouched.

Options:

``--method modular|direct|lavagno``   synthesis method (default modular)
``--engine hybrid|dpll|cdcl|bdd``     SAT engine (default hybrid)
``--sat-mode incremental|oneshot``    incremental assumption-based SAT
                                      vs cold solver per formula
``--timeout SECONDS``                 global wall-clock budget
``--max-states N``                    cap on generated state-graph states
``--no-fallback``                     disable engine escalation and
                                      per-module degradation
``--jobs N``                          parallel module-solve workers
                                      (modular method; default 1)
``--cache-dir PATH``                  persistent result cache directory
``--no-cache``                        ignore ``--cache-dir``
``--cache-max-bytes N``               LRU size bound on the result cache
``--retries N``                       supervised retry budget per module
                                      (worker death/overrun; default 2)
``--retry-backoff SECONDS``           base backoff before the first
                                      retry round (default 0.05)
``--blif PATH``                       write the circuit netlist
``--verify-level csc|conformance|hazards``
                                      verification depth: static CSC
                                      re-check, closed-loop conformance,
                                      or conformance plus semi-modularity
                                      / hazard-freedom (default hazards)
``--no-verify``                       skip the closed-loop model check
                                      (same as --verify-level csc)
``--quiet``                           only print the summary line
``--json``                            print the run as one repro-api/1
                                      response document instead of the
                                      human narration
``--trace FILE.jsonl``                write the span journal to FILE
                                      (``.gz`` suffix gzips it)
``--metrics``                        print run-wide counter totals
                                     (plus derived cache hit rates)
``--metrics-tree``                   print the span tree with per-span
                                     self time vs child time
``--metrics-prom PATH``              write counters/histograms/gauges
                                     in Prometheus text format
``--trace-memory``                   record tracemalloc peak-memory
                                     gauges per top-level span
``--profile-top N``                  print the N heaviest span names

Observability flags compose with ``--quiet`` as follows: ``--quiet``
suppresses the *human* narration (the per-signal equations), never the
machine-readable outputs -- a requested trace file is always written,
and ``--metrics``/``--profile-top`` tables are explicit requests so
they print regardless.  The trace file is written even when the run
fails or times out, so a journal of a bad run still shows where it
went wrong.

Exit codes: ``0`` success, ``1`` error (bad input, failed synthesis or
verification), ``2`` success with degradation (some output needed a
fallback pass, or verification was skipped at the deadline), ``3``
budget exhausted (partial per-module results on stderr).  The
observability flags never change the exit code: a run that traces
successfully but degrades still exits 2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import obs
from repro.errors import ReproError
from repro.logic import equations, write_synthesis_blif
from repro.runtime.budget import Budget
from repro.runtime.options import SynthesisOptions
from repro.runtime.report import RUN_ERROR, RUN_TIMEOUT
from repro.runtime.run import run_synthesis
from repro.stg import load_stg, validate_stg

_METHODS = ("modular", "direct", "lavagno")


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "generate":
        return _generate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Synthesise an asynchronous circuit from an STG.",
    )
    parser.add_argument("spec", help="astg .g specification file")
    parser.add_argument(
        "--method", choices=sorted(_METHODS), default="modular"
    )
    parser.add_argument(
        "--engine", choices=["hybrid", "dpll", "cdcl", "bdd"],
        default="hybrid",
    )
    parser.add_argument(
        "--sat-mode", choices=["incremental", "oneshot"],
        default="incremental",
        help="incremental: one assumption-based solver per grow-m loop "
             "(learned clauses carry across attempts); oneshot: cold "
             "solver per formula (paper-faithful baseline)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="global wall-clock budget for the whole run",
    )
    parser.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="abort when a state graph exceeds N states",
    )
    parser.add_argument(
        "--no-fallback", action="store_true",
        help="disable the engine-fallback ladder and module degradation",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for per-module solves (modular method)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent result cache directory (reused across runs)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir for this run",
    )
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="evict least-recently-used result-cache records past N "
             "total bytes (default: unbounded)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="resubmissions of a module whose worker died or overran "
             "before it is re-solved serially (modular --jobs > 1)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base delay before the first retry round; later rounds "
             "double it (deterministic jitter)",
    )
    parser.add_argument("--blif", metavar="PATH", default=None)
    parser.add_argument(
        "--verify-level", choices=["csc", "conformance", "hazards"],
        default="hazards",
        help="verification depth: csc re-checks state coding statically, "
             "conformance model-checks the gate-level closed loop, "
             "hazards adds semi-modularity / output-hazard freedom "
             "(default hazards)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the closed-loop model check (forces --verify-level csc)",
    )
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--json", action="store_true",
        help="print one repro-api/1 response document on stdout instead "
             "of the human summary and equations",
    )
    parser.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write a JSONL span journal (written even under --quiet)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print run-wide counter totals after the summary",
    )
    parser.add_argument(
        "--metrics-tree", action="store_true",
        help="print the span tree with self time vs child time",
    )
    parser.add_argument(
        "--metrics-prom", metavar="PATH", default=None,
        help="write counters/histograms/gauges as Prometheus text",
    )
    parser.add_argument(
        "--trace-memory", action="store_true",
        help="record tracemalloc peak-memory gauges per top-level span",
    )
    parser.add_argument(
        "--profile-top", type=int, default=None, metavar="N",
        help="print the N heaviest span names by total wall clock",
    )
    args = parser.parse_args(argv)

    try:
        stg = load_stg(args.spec)
        validate_stg(stg)
    except OSError as exc:
        print(f"error: cannot read {args.spec}: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {args.spec}: {exc.describe()}", file=sys.stderr)
        return 1

    observe = bool(
        args.trace or args.metrics or args.profile_top
        or args.metrics_tree or args.metrics_prom or args.trace_memory
    )
    tracer = None
    if observe:
        tracer = obs.install(obs.Tracer(
            journal=args.trace,
            keep_events=args.metrics_tree,
            memory=args.trace_memory,
        ))
    try:
        code = _run(args, stg, tracer)
    finally:
        # Close (and flush) the journal even when the run failed: a
        # trace of a bad run is the one worth reading.
        if tracer is not None:
            obs.uninstall()
            tracer.close()
    if tracer is not None:
        _print_observability(args, tracer)
    return code


def _run(args, stg, tracer):
    budget = Budget(max_seconds=args.timeout, max_states=args.max_states)
    cache_dir = None if args.no_cache else args.cache_dir
    options = SynthesisOptions(
        engine=args.engine, sat_mode=args.sat_mode, budget=budget,
        fallback=not args.no_fallback, degrade=not args.no_fallback,
        jobs=max(1, args.jobs), cache_dir=cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        retries=max(0, args.retries),
        retry_backoff=max(0.0, args.retry_backoff),
        verify_level="csc" if args.no_verify else args.verify_level,
    )
    report = run_synthesis(stg, method=args.method, options=options)

    if report.status == RUN_ERROR:
        print(f"error: {report.error.describe()}", file=sys.stderr)
        _print_json(args, report, stg)
        return 1
    if report.status == RUN_TIMEOUT:
        print(f"timeout: {report.summary()}", file=sys.stderr)
        _print_modules(report)
        _print_json(args, report, stg)
        return 3

    result = report.result
    degraded = bool(report.degraded_modules or report.skipped_modules)
    verify = report.verify
    verified = ""
    if verify is not None and not args.no_verify:
        if verify.skipped is not None:
            # Synthesis finished on the wire; a model check would push
            # the run past its promised deadline (or state budget).
            verified = f", verify skipped ({verify.skipped})"
            degraded = True
        elif verify.violations:
            print(
                f"error: synthesised circuit does not conform: "
                f"{verify.violations[:3]}",
                file=sys.stderr,
            )
            _print_json(args, report, stg)
            return 1
        elif verify.truncated:
            # The exploration cap cut the pass short: a clean-so-far
            # traversal is not a proof.
            verified = ", verify inconclusive (state cap)"
            degraded = True
        elif verify.level == "hazards":
            verified = ", conformance verified, hazard-free"
        elif verify.level == "conformance":
            verified = ", conformance verified"
        else:
            verified = ", csc verified"

    if args.json:
        _print_json(args, report, stg)
    else:
        print(
            f"{stg.name}: {result.initial_states} -> "
            f"{result.final_states} states, {result.initial_signals} -> "
            f"{result.final_signals} signals, {result.literals} literals, "
            f"{result.seconds:.2f}s ({args.method}/{args.engine}{verified})"
        )
        if not args.quiet:
            for line in equations(result.covers, result.expanded.signals):
                print(f"  {line}")

    if args.blif:
        text = write_synthesis_blif(result, stg.inputs, model=stg.name)
        with open(args.blif, "w", encoding="utf-8") as handle:
            handle.write(text)
        if not args.json:
            print(f"wrote {args.blif}")

    if degraded:
        print(f"degraded: {report.summary()}", file=sys.stderr)
        _print_modules(report, only_degraded=True)
        return 2
    return 0


def _print_json(args, report, stg):
    """The ``--json`` document on stdout (stdout carries nothing else).

    The ``verified`` verdict and the ``verify`` document both derive
    from the run's own verification pass (``report.verify``).
    """
    if not args.json:
        return
    from repro import api

    response = api.response_from_report(report, model=stg.name)
    print(api.to_json_bytes(response).decode("utf-8"))


def _serve_main(argv):
    """``python -m repro serve``: run the HTTP synthesis service."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve synthesis over HTTP (POST /synthesize, "
                    "GET /metrics, GET /healthz).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port; 0 picks a free one (printed on the ready line)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="shared result-cache directory: whole responses replay "
             "from it and workers reuse its module/artifact records",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes, i.e. the bound on concurrently "
             "executing requests",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the gate-level conformance check on each result",
    )
    parser.add_argument(
        "--executor", choices=["process", "thread", "inline"],
        default="process",
        help="worker pool flavour (thread/inline are for tests and "
             "debugging; process is the real deployment)",
    )
    args = parser.parse_args(argv)

    from repro.service import run_server

    return run_server(
        host=args.host, port=args.port, cache_dir=args.cache_dir,
        jobs=args.jobs, verify=not args.no_verify, executor=args.executor,
    )


def _generate_main(argv):
    """``python -m repro generate``: emit random live/safe STGs."""
    parser = argparse.ArgumentParser(
        prog="python -m repro generate",
        description="Generate random live/safe free-choice STGs "
                    "(.g text on stdout, or files under --out-dir).",
    )
    parser.add_argument("--count", type=int, default=1, metavar="N")
    parser.add_argument("--signals", type=int, default=6, metavar="N")
    parser.add_argument(
        "--width", type=int, default=2, metavar="N",
        help="maximum concurrent branches per Par phase (1 disables "
             "concurrency)",
    )
    parser.add_argument(
        "--csc-density", type=float, default=0.0, metavar="P",
        help="probability in [0,1] of a CSC-conflict echo tail per phase",
    )
    parser.add_argument("--seed", type=int, default=0, metavar="N")
    parser.add_argument(
        "--out-dir", metavar="PATH", default=None,
        help="write one <name>.g file per circuit instead of stdout",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print one JSON line of structure stats per circuit "
             "on stderr",
    )
    args = parser.parse_args(argv)

    from repro.stg.generate import generate_corpus

    try:
        corpus = generate_corpus(
            args.count, signals=args.signals, width=args.width,
            csc_density=args.csc_density, seed=args.seed,
        )
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    try:
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            for generated in corpus:
                path = os.path.join(args.out_dir, f"{generated.name}.g")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(generated.g_text)
            print(f"wrote {len(corpus)} circuits to {args.out_dir}")
        else:
            for generated in corpus:
                sys.stdout.write(generated.g_text)
    except BrokenPipeError:
        # Downstream (e.g. ``| head``) closed the pipe; that is its
        # prerogative, not an error worth a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    if args.stats:
        for generated in corpus:
            line = {"name": generated.name, "seed": generated.seed}
            line.update(generated.stats())
            print(json.dumps(line, sort_keys=True), file=sys.stderr)
    return 0


def _print_observability(args, tracer):
    """Counter totals / span profile on stdout.

    These are explicit requests, so they print even under ``--quiet``
    and on failed runs (the tracer has already folded whatever spans
    completed before the failure).
    """
    from repro.obs import (
        build_forest,
        format_counters,
        format_profile,
        format_tree,
        prometheus_text,
        with_derived,
    )

    if args.metrics:
        totals = with_derived(tracer.counter_totals())
        print(format_counters(totals) if totals else "metrics: none recorded")
    if args.metrics_tree:
        roots = build_forest(tracer.events)
        print(format_tree(roots) if roots else "metrics-tree: no spans")
    if args.profile_top:
        print(format_profile(tracer.stats, top=args.profile_top))
    if args.metrics_prom:
        text = prometheus_text(
            counters=with_derived(tracer.counter_totals()),
            histograms=tracer.histograms,
            gauges=tracer.gauges,
        )
        with open(args.metrics_prom, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.metrics_prom}")


def _print_modules(report, only_degraded=False):
    """Per-module statuses on stderr (partial results / degradations)."""
    for module in report.modules:
        if only_degraded and module.status == "ok":
            continue
        detail = f" ({module.detail})" if module.detail else ""
        print(f"  {module.output}: {module.status}{detail}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
