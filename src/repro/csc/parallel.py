"""Parallel dispatch of independent per-output module solves.

The paper's modules are independent SAT-CSC instances *as long as no
earlier module's state signal enters a later module's input set*.  The
serial loop in :func:`~repro.csc.synthesis.modular_synthesis` exploits
nothing of that; this module runs the optimistic part on a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* every output's module is solved **against the empty assignment** (the
  one assignment state that is a pure function of the input), using the
  pre-scan's input-set basis and ``name_start=0``;
* the parent then *merges* the results back in the fixed serial output
  order (:func:`~repro.csc.synthesis.modular_synthesis` owns that loop):
  a worker result is adopted -- with its state signals renamed to the
  names the serial run would have used -- exactly when the output's
  input set, recomputed against the accumulated assignment, still hides
  the same signals and kept no earlier state signal.  Otherwise the
  module is *sequentially dependent* and is re-solved serially on the
  spot, which is bit-identical to what the serial loop does.

This makes ``jobs=N`` an execution detail: the merged assignment,
signal names, reports and covers are identical to ``jobs=1`` (the
determinism contract of ``docs/parallelism.md``).

Worker budgets come from :meth:`repro.runtime.budget.Budget.split`:
every worker shares the parent's absolute wall deadline and owns
``1/jobs`` of the backtrack pool; the parent re-charges the workers'
actual usage at merge time.  Worker failures never crash the run: a
:class:`~repro.csc.errors.CscError` (or any unexpected worker
exception) travels back as data and enters the serial ``degrade=`` path
at that output's turn, and a worker budget exhaustion re-raises
:class:`~repro.runtime.budget.BudgetExhaustedError` in the parent.

Dispatch is **supervised** (:class:`~repro.runtime.supervise.
SupervisedPool`): a worker killed by the OS, a stuck worker past the
per-task allowance, or a pool that breaks mid-batch does not surface as
a ``BrokenProcessPool`` traceback.  The pool is respawned, the affected
modules are resubmitted with deterministic exponential backoff
(``options.retries`` / ``options.retry_backoff``), and a module that
exhausts its retry budget comes back tagged :data:`PREPARED_RESCUE` --
the merge loop then re-solves it serially in the parent (a *serial
rescue*), which is bit-identical to what the serial loop would have
produced, before anything can enter the ``degrade=`` path.  An
infrastructure failure the supervisor cannot contain is re-raised as a
:class:`~repro.runtime.supervise.WorkerCrashError`
(``kind="worker"``), never a raw executor traceback.

Fault injection (``module-solve``, ``worker-crash``) is consulted
*parent-side* at dispatch, in output order -- worker processes clear
the inherited fault registry -- so armed faults fire deterministically
regardless of worker scheduling.  A ``worker-crash`` shot marks one
output whose worker then genuinely dies (``os._exit``) on the first
attempt, driving the real ``BrokenProcessPool`` recovery path rather
than a simulation of it.

Tracing: when the parent has a tracer installed, every worker traces
its own solves into an in-memory journal; the parent folds the
profiles into its own (:meth:`repro.obs.tracer.Tracer.absorb`) and the
journal text is appended to the parent's sink as a self-contained
segment, the same shape the parallel bench runner produces.
"""

from __future__ import annotations

import io
import os
from concurrent.futures import ProcessPoolExecutor

from repro import obs
from repro.csc.assignment import Assignment
from repro.csc.errors import CscError, SynthesisError
from repro.csc.modular import partition_sat
from repro.obs.tracer import Tracer
from repro.runtime.budget import BudgetExhaustedError
from repro.runtime.faults import should_fire as _fault_fires
from repro.runtime.supervise import (
    OUTCOME_OK,
    RetryPolicy,
    SupervisedPool,
    SuperviseStats,
)

#: ``prepared`` entry tags (see :func:`prepare_parallel`).
PREPARED_PARTITION = "partition"
PREPARED_ERROR = "error"
PREPARED_BUDGET = "budget"
PREPARED_RESCUE = "rescue"


# -- worker side -----------------------------------------------------------

_worker = {}


def _init_worker(graph, params, budget_slice, trace):
    """Per-process setup: the graph, solve parameters, budget, cache.

    Runs once per pool worker.  The inherited fault registry is cleared
    -- faults are the parent's to fire, at dispatch, in output order --
    and the worker's budget slice starts counting now (the pool starts
    all workers at dispatch time, so "now" is the split instant).
    ``trace`` is ``{"enabled": bool, "memory": bool}`` mirroring the
    parent tracer's configuration (a bare bool is accepted for
    compatibility and means journal-only).
    """
    from repro.perf import ProjectionCache
    from repro.runtime import faults

    faults.clear(env=True)
    if not isinstance(trace, dict):
        trace = {"enabled": bool(trace), "memory": False}
    _worker["graph"] = graph
    _worker["params"] = params
    _worker["budget"] = (
        budget_slice.start() if budget_slice is not None else None
    )
    _worker["cache"] = ProjectionCache(graph)
    _worker["trace"] = trace


def _solve_one(output, input_set, die=False, attempt=0):
    """Solve one output's module against the empty assignment.

    Returns a plain dict (everything picklable):

    * ``{"status": "ok", "partition": ..., "backtracks": n, ...}`` --
      the :class:`~repro.csc.modular.PartitionResult`, solved with
      ``name_start=0`` and its quotient detached from the base graph
      (the parent already holds Σ and reattaches it);
    * ``{"status": "error", "exc": ...}`` -- the solve failed; the
      exception object rides along so the parent's degrade detail is
      the same string the serial path would record;
    * ``{"status": "budget", ...}`` -- this worker's budget slice is
      exhausted.

    ``die`` is set by the parent when a ``worker-crash`` fault fired
    for this output at dispatch: the worker process exits hard --
    exactly the shape of an OS kill -- on the first attempt only, so
    the supervised retry then succeeds.  ``attempt`` is appended by
    :class:`~repro.runtime.supervise.SupervisedPool`.
    """
    if die and attempt == 0:
        os._exit(43)
    graph = _worker["graph"]
    params = _worker["params"]
    budget = _worker["budget"]
    tracer = buffer = None
    if _worker["trace"]["enabled"]:
        buffer = io.StringIO()
        tracer = obs.install(Tracer(
            journal=buffer, memory=_worker["trace"]["memory"],
        ))
    used_before = budget.backtracks_used if budget is not None else 0
    try:
        empty = Assignment.empty(graph.num_states)
        try:
            result = partition_sat(
                graph, output, input_set, empty,
                limits=params["limits"],
                max_signals=params["max_signals"],
                name_start=0,
                signal_prefix=params["signal_prefix"],
                engine=params["engine"],
                budget=budget,
                fallback=params["fallback"],
                cache=_worker["cache"],
                sat_mode=params["sat_mode"],
            )
        except BudgetExhaustedError as exc:
            return _finish({
                "status": "budget",
                "message": str(exc),
                "resource": exc.resource,
                "point": exc.point,
            }, budget, used_before, tracer, buffer)
        except CscError as exc:
            return _finish(
                {"status": "error", "exc": exc},
                budget, used_before, tracer, buffer,
            )
        except Exception as exc:  # unexpected: degrade, don't crash the run
            wrapped = SynthesisError(
                f"module worker failed for {output!r}: {exc}"
            )
            return _finish(
                {"status": "error", "exc": wrapped},
                budget, used_before, tracer, buffer,
            )
        # Detach the quotient from Σ for the wire (the parent already
        # holds the graph and reattaches it).  A *copy*, not an in-place
        # ``base = None``: the projection cache may hand this same
        # QuotientGraph to this worker's next solve.
        from repro.stategraph.quotient import QuotientGraph

        q = result.quotient
        result.quotient = QuotientGraph(
            None, q.graph, q.cover, q.blocks, q.hidden
        )
        return _finish(
            {"status": "ok", "partition": result},
            budget, used_before, tracer, buffer,
        )
    finally:
        if tracer is not None:
            obs.uninstall()


def _finish(payload, budget, used_before, tracer, buffer):
    """Attach budget usage and trace data to a worker payload."""
    if budget is not None:
        payload["backtracks"] = budget.backtracks_used - used_before
    if tracer is not None:
        tracer.close()
        payload["stats"] = tracer.stats_dict()
        payload["journal"] = buffer.getvalue()
        metrics = tracer.metrics_dict()
        if metrics:
            payload["metrics"] = metrics
    return payload


# -- parent side -----------------------------------------------------------

def prepare_parallel(graph, outputs, basis, *, limits, max_signals,
                     signal_prefix, engine, budget, fallback, jobs,
                     sat_mode="incremental", policy=None):
    """Solve the listed outputs' modules on a supervised worker pool.

    Parameters
    ----------
    graph:
        The complete state graph Σ (shipped to each worker once).
    outputs:
        Outputs to dispatch, in the run's fixed processing order.
    basis:
        ``{output: InputSetResult}`` derived against the empty
        assignment (the pre-scan's work).
    budget:
        The parent :class:`~repro.runtime.budget.Budget`; split into
        per-worker slices.  Workers' backtrack usage is charged back
        here as results arrive.
    jobs:
        Worker process count (>= 2; the serial loop handles 1).
    policy:
        The :class:`~repro.runtime.supervise.RetryPolicy` governing
        crash recovery; defaults to ``RetryPolicy()``.

    Returns
    -------
    (dict, SuperviseStats)
        ``{output: entry}`` where ``entry`` is one of

        * ``(PREPARED_PARTITION, PartitionResult)`` -- solved at
          ``name_start=0``, quotient reattached to ``graph``;
        * ``(PREPARED_ERROR, exception)`` -- the module failed (or an
          armed ``module-solve`` fault fired at dispatch);
        * ``(PREPARED_BUDGET, message, resource, point)`` -- that
          worker's budget slice ran out;
        * ``(PREPARED_RESCUE, exception)`` -- the module's worker kept
          dying past the retry budget; the merge loop must re-solve it
          serially in the parent.

        The :class:`~repro.runtime.supervise.SuperviseStats` records
        worker deaths, pool respawns and per-output retry counts for
        the :class:`~repro.runtime.report.RunReport`.
    """
    prepared = {}
    stats = SuperviseStats()
    to_dispatch = []
    crash_marked = set()
    for output in outputs:
        # The parent owns fault shots: deterministic in output order,
        # independent of worker scheduling (workers clear the registry).
        if _fault_fires("module-solve", detail=output):
            prepared[output] = (PREPARED_ERROR, SynthesisError(
                f"injected fault: modular solve failed for {output!r}"
            ))
            continue
        if _fault_fires("worker-crash", detail=output):
            crash_marked.add(output)
        to_dispatch.append(output)
    if not to_dispatch:
        return prepared, stats

    trace = {
        "enabled": obs.enabled(),
        "memory": bool(getattr(obs.active(), "memory", False)),
    }
    params = {
        "limits": limits,
        "max_signals": max_signals,
        "signal_prefix": signal_prefix,
        "engine": engine,
        "fallback": fallback,
        "sat_mode": sat_mode,
    }
    workers = min(jobs, len(to_dispatch))

    def factory():
        # Re-read the parent budget at every (re)spawn, so workers on a
        # respawned pool inherit the *remaining* allowance, not the one
        # from before the crash.
        budget_slice = (
            budget.split(workers)[0] if budget is not None else None
        )
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(graph, params, budget_slice, trace),
        )

    supervisor = SupervisedPool(
        factory,
        policy=policy if policy is not None else RetryPolicy(),
        budget=budget,
    )
    tasks = {
        output: (output, basis[output], output in crash_marked)
        for output in to_dispatch
    }
    with obs.span("module_parallel", jobs=workers,
                  modules=len(to_dispatch)) as span:
        outcomes, stats = supervisor.run(_solve_one, tasks)
        for output in to_dispatch:
            tag, value = outcomes[output]
            if tag == OUTCOME_OK:
                prepared[output] = _absorb_payload(
                    value, output, graph, budget
                )
            else:
                prepared[output] = (PREPARED_RESCUE, value)
        span.add("parallel_modules", len(to_dispatch))
    obs.add("parallel_runs")
    return prepared, stats


def _absorb_payload(payload, output, graph, budget):
    """Turn one worker payload into a ``prepared`` entry.

    Side effects: charges the worker's backtracks to the parent budget
    and folds the worker's trace into the installed tracer.
    """
    if budget is not None:
        budget.charge_backtracks(payload.get("backtracks", 0))
    tracer = obs.active()
    if tracer is not None and "stats" in payload:
        tracer.absorb(payload.get("stats"), payload.get("journal"),
                      payload.get("metrics"))
    status = payload["status"]
    if status == "ok":
        partition = payload["partition"]
        partition.quotient.base = graph
        return (PREPARED_PARTITION, partition)
    if status == "budget":
        return (
            PREPARED_BUDGET, payload["message"],
            payload.get("resource"), payload.get("point"),
        )
    return (PREPARED_ERROR, payload["exc"])


def rename_partition(partition, signal_prefix, name_start):
    """The serial-run names for a worker- or cache-produced partition.

    Workers and cache records number state signals from zero; the merge
    loop renames them to ``{prefix}{name_start+k}`` -- exactly the names
    ``partition_sat`` would have chosen at that point of the serial run.
    The partition is mutated in place (worker results and cache loads
    are single-use objects).
    """
    macro = partition.macro_assignment
    names = [
        f"{signal_prefix}{name_start + k}" for k in range(macro.num_signals)
    ]
    partition.macro_assignment = Assignment(names, macro.values)
    return partition
