"""The four-valued state-variable domain {0, 1, Up, Down}.

Section 2.1 of the paper: a state variable assigned ``Up`` in state ``M``
means the state signal is excited to rise there (current value 0, next
value 1); ``Down`` is the falling mirror.  The binary encoding used by the
SAT formulation is ``(current_value, excited)``::

    0    -> (0, 0)      1    -> (1, 0)
    Up   -> (0, 1)      Down -> (1, 1)

so the bit used in state codes is literally the first component.

This module also implements the two relations everything else is built on:

* :data:`ALLOWED_EDGE_PAIRS` -- which ``(value, value')`` pairs are
  consistent along a state graph edge (consistent state assignment plus
  semi-modularity: an excited signal stays excited until it fires);
* :func:`merge_values` -- Figure 3's rules for combining the values of
  states merged by an ε region.
"""

from __future__ import annotations

from enum import Enum


class Value(Enum):
    """A four-valued state-variable assignment."""

    ZERO = "0"
    ONE = "1"
    UP = "Up"
    DOWN = "Down"

    def __repr__(self):
        return f"Value.{self.name}"

    @property
    def cur(self):
        """Current binary value: the bit contributed to state codes."""
        return 0 if self in (Value.ZERO, Value.UP) else 1

    @property
    def excited(self):
        """True when the state signal is enabled to fire."""
        return self in (Value.UP, Value.DOWN)

    @property
    def implied(self):
        """Next-state value: what the signal's logic function outputs."""
        return 1 if self in (Value.UP, Value.ONE) else 0

    @property
    def bits(self):
        """The SAT encoding ``(current_value, excited)``."""
        return (self.cur, 1 if self.excited else 0)

    @classmethod
    def from_bits(cls, cur, excited):
        return _FROM_BITS[(cur, excited)]


_FROM_BITS = {
    (0, 0): Value.ZERO,
    (1, 0): Value.ONE,
    (0, 1): Value.UP,
    (1, 1): Value.DOWN,
}

#: The excitation cycle 0 -> Up -> 1 -> Down -> 0.
CYCLE = (Value.ZERO, Value.UP, Value.ONE, Value.DOWN)

#: Value pairs allowed across a state-graph edge that fires some *other*
#: signal.  A value may stay put or advance one step along the cycle;
#: anything else either breaks consistency (a jump 0 -> 1) or
#: semi-modularity (an excited signal losing its excitation, Up -> 0).
ALLOWED_EDGE_PAIRS = frozenset(
    [(v, v) for v in CYCLE]
    + [(CYCLE[i], CYCLE[(i + 1) % 4]) for i in range(4)]
)


def edge_compatible(before, after):
    """True if ``before -> after`` is allowed along a state graph edge."""
    return (before, after) in ALLOWED_EDGE_PAIRS


def merge_values(values):
    """Figure 3: merge the state-variable values of an ε-merged region.

    Parameters
    ----------
    values:
        Iterable of :class:`Value` carried by the merged states.

    Returns
    -------
    Value or None
        The merged value, or ``None`` when the members are inconsistent
        (Figure 3(j,k)): the distinct values must form a contiguous arc of
        the cycle 0 -> Up -> 1 -> Down -> 0 containing at most one excited
        phase.  If the region contains an excited phase the merged value
        is that phase (the transition happens *inside* the merged state);
        otherwise all members agree and the common value is returned.
    """
    distinct = set(values)
    if not distinct:
        raise ValueError("cannot merge an empty set of values")
    if len(distinct) == 1:
        return next(iter(distinct))
    if Value.UP in distinct and Value.DOWN in distinct:
        return None
    if len(distinct) > 3:
        return None
    # Check contiguity on the cycle: some rotation must line them up.
    for start in range(4):
        arc = [CYCLE[(start + offset) % 4] for offset in range(len(distinct))]
        if distinct == set(arc):
            break
    else:
        return None
    if Value.UP in distinct:
        return Value.UP
    if Value.DOWN in distinct:
        return Value.DOWN
    # A contiguous arc of length >= 2 without an excited phase would have
    # to contain both 0 and 1 adjacent on the cycle -- impossible.
    return None
