"""The SAT-CSC encoding (Section 2.1 of the paper).

Each state ``M_i`` of the target graph gets ``m`` four-valued state
variables; each variable is encoded with two boolean variables
``(a, b) = (current_value, excited)`` (see :mod:`repro.csc.values`).  The
formula asserts three constraint families:

1. **Edge compatibility** (consistent state assignment + semi-modularity):
   along every edge the four-valued value may stay put or advance one step
   on the cycle ``0 -> Up -> 1 -> Down -> 0``.  In the two-bit encoding the
   allowed successor set collapses per source value, costing six clauses
   per edge per state signal.
2. **CSC distinction**: every conflicting pair of states must be *stably*
   separated by at least one new state signal: one state holds 0, the
   other holds 1, and neither is excited.  (Stability matters: an excited
   state splits into both a 0-half and a 1-half during expansion, so an
   excited "difference" does not separate the split products.)
3. **USC implied-value consistency**: a pair of equal-code states that is
   not a conflict must not *become* one through the new signals
   themselves.  After expansion, the split products of the two states
   collide exactly when every signal's code spans overlap; a collision is
   harmful when some signal's implied values disagree on the overlap --
   the combinations (Up,0), (Down,1), (Up,Down) and mirrors.  The clause
   set therefore requires: *some* signal separates the pair stably, or
   *no* signal carries a disagreeing combination.

Satisfying assignments decode into four-valued
:class:`~repro.csc.assignment.Assignment` columns.

The encoder reads its input graph exclusively through the
:class:`~repro.stategraph.view.StateGraphView` protocol (``states``,
``edges``, ``code_of``, ``excitation``, ``implied_values``, ``signals``,
``non_inputs``), which is why it works unchanged on the complete state
graph Σ and on the macro graphs the modular method projects from it.
"""

from __future__ import annotations

from repro.csc.errors import IntrinsicConflictError
from repro.csc.values import Value
from repro.sat.cnf import Cnf
from repro.sat.incremental import IncrementalSolver
from repro.stategraph.csc import code_classes, csc_conflicts
from repro.stategraph.graph import EPSILON


class CscFormula:
    """A built SAT-CSC instance.

    Attributes
    ----------
    cnf:
        The CNF formula.
    graph:
        The state graph it encodes (complete or modular).
    m:
        Number of new state signals.
    conflict_pairs / match_pairs:
        The CSC pairs forced apart and the USC pairs kept consistent.
    """

    def __init__(self, cnf, graph, m, a_vars, b_vars, conflict_pairs,
                 match_pairs):
        self.cnf = cnf
        self.graph = graph
        self.m = m
        self._a = a_vars
        self._b = b_vars
        self.conflict_pairs = conflict_pairs
        self.match_pairs = match_pairs

    @property
    def num_vars(self):
        return self.cnf.num_vars

    @property
    def num_clauses(self):
        return self.cnf.num_clauses

    def decode(self, model):
        """Decode a SAT model into per-state tuples of :class:`Value`."""
        rows = []
        for state in self.graph.states():
            row = tuple(
                Value.from_bits(
                    1 if model[self._a[state][k]] else 0,
                    1 if model[self._b[state][k]] else 0,
                )
                for k in range(self.m)
            )
            rows.append(row)
        return rows


def build_csc_formula(graph, m, outputs=None, extra_codes=None,
                      extra_implied=None, conflict_pairs=None,
                      allow_serialisation=True):
    """Build the SAT-CSC formula for inserting ``m`` new state signals.

    Parameters
    ----------
    graph:
        The target :class:`~repro.stategraph.graph.StateGraph` (for the
        modular method, the macro graph of a quotient).
    m:
        Number of new state signals (``m >= 1``; with zero conflicts no
        formula is needed).
    outputs:
        Signals whose implied values define conflicts (defaults to the
        graph's non-inputs).
    extra_codes:
        Per-state current-value bits of already-inserted state signals.
    extra_implied:
        Per-state implied bits of already-inserted state signals (used by
        whole-graph repair, where old state signals are outputs too).
    conflict_pairs:
        Precomputed conflict pairs; computed from the graph when omitted.
    allow_serialisation:
        Whether a new state signal may fire strictly *before* an excited
        output (value pair (Up, 1)/(Down, 0) across a non-input edge).
        Allowing it is sometimes necessary (tight cycles) but makes the
        delayed output's logic depend on the new signal, growing its
        cover; the solve loop therefore tries the banned variant first.

    Raises
    ------
    IntrinsicConflictError
        If some conflict pair is intrinsic (``(s, s)``): no coding fixes it.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if conflict_pairs is None:
        conflict_pairs = csc_conflicts(
            graph, outputs=outputs, extra_codes=extra_codes,
            extra_implied=extra_implied,
        )
    intrinsic = [pair for pair in conflict_pairs if pair[0] == pair[1]]
    if intrinsic:
        raise IntrinsicConflictError(
            f"states {sorted({a for a, _ in intrinsic})} have ambiguous "
            "implied values; no state-signal insertion can satisfy CSC"
        )

    cnf = Cnf()
    a_vars = [
        [cnf.new_var(f"a[{state}][{k}]") for k in range(m)]
        for state in graph.states()
    ]
    b_vars = [
        [cnf.new_var(f"b[{state}][{k}]") for k in range(m)]
        for state in graph.states()
    ]
    # Optimising engines (the BDD solver of the follow-up paper [19])
    # minimise the number of excited states: each split costs area.
    for state_vars in b_vars:
        for var in state_vars:
            cnf.set_weight(var, 1)

    _add_edge_compatibility(cnf, graph, m, a_vars, b_vars)
    if not allow_serialisation:
        _ban_serialisation(cnf, graph, m, a_vars, b_vars)
    for i, j in conflict_pairs:
        _add_distinction(cnf, m, a_vars, b_vars, i, j)

    conflict_set = set(conflict_pairs)
    match_pairs = []
    for states in code_classes(graph, extra_codes).values():
        for x, i in enumerate(states):
            for j in states[x + 1:]:
                if (i, j) not in conflict_set:
                    match_pairs.append((i, j))
    if allow_serialisation:
        serial_flags, serial_terms = _add_serialisation_flags(
            cnf, graph, m, a_vars, b_vars
        )
        _add_output_persistence(cnf, graph, m, serial_terms)
    else:
        serial_flags = {}
    for i, j in match_pairs:
        _add_implied_consistency(
            cnf, m, a_vars, b_vars, i, j, serial_flags
        )

    return CscFormula(cnf, graph, m, a_vars, b_vars, conflict_pairs,
                      match_pairs)


def _add_edge_compatibility(cnf, graph, m, a_vars, b_vars):
    """Six clauses per (edge, state signal); see the module docstring.

    With ``u`` the source and ``v`` the target value bits:

    * from 0  ``(a=0,b=0)``: next must have a'=0
    * from Up ``(a=0,b=1)``: next must have a' xor b' = 1 (Up or 1)
    * from 1  ``(a=1,b=0)``: next must have a'=1
    * from Dn ``(a=1,b=1)``: next must have a' = b' (Down or 0)

    """
    non_inputs = graph.non_inputs
    for source, label, target in graph.edges:
        if label is EPSILON:
            continue
        input_edge = label[0] not in non_inputs
        for k in range(m):
            au, bu = a_vars[source][k], b_vars[source][k]
            av, bv = a_vars[target][k], b_vars[target][k]
            # from 0: not a'
            cnf.add_clause([au, bu, -av])
            # from Up: a' xor b'
            cnf.add_clause([au, -bu, av, bv])
            cnf.add_clause([au, -bu, -av, -bv])
            # from 1: a'
            cnf.add_clause([-au, bu, av])
            # from Down: a' == b'
            cnf.add_clause([-au, -bu, -av, bv])
            cnf.add_clause([-au, -bu, av, -bv])
            if input_edge:
                # A state signal can never fire strictly *before* an
                # input: the environment does not wait for internal
                # gates, so the ordering is unrealisable (the gate-level
                # conformance checker exposes it as a hazard/race).
                # Forbid (Up, 1) and (Down, 0) across input edges.
                cnf.add_clause([au, -bu, -av, bv])
                cnf.add_clause([-au, -bu, av, bv])


def _add_distinction(cnf, m, a_vars, b_vars, i, j):
    """Some new signal must separate i and j *stably*.

    ``d_k`` implies (a_i xor a_j) and both states unexcited on signal k;
    at least one ``d_k`` must hold.  Only the forward implication is
    needed: the disjunction forces some ``d_k`` true, which forces a real
    stable difference.
    """
    selectors = []
    for k in range(m):
        ai, aj = a_vars[i][k], a_vars[j][k]
        bi, bj = b_vars[i][k], b_vars[j][k]
        d = cnf.new_var()
        cnf.add_clause([-d, ai, aj])
        cnf.add_clause([-d, -ai, -aj])
        cnf.add_clause([-d, -bi])
        cnf.add_clause([-d, -bj])
        selectors.append(d)
    cnf.add_clause(selectors)


#: Value combinations whose expansion code spans overlap while the
#: implied values disagree.  Bits are (a_i, b_i, a_j, b_j).
_INCONSISTENT_COMBOS = (
    (0, 1, 0, 0),  # (Up, 0):   both can show code 0, implied 1 vs 0
    (0, 0, 0, 1),  # (0, Up)
    (1, 1, 1, 0),  # (Down, 1): both can show code 1, implied 0 vs 1
    (1, 0, 1, 1),  # (1, Down)
    (0, 1, 1, 1),  # (Up, Down): spans fully overlap, implied 1 vs 0
    (1, 1, 0, 1),  # (Down, Up)
)


def _ban_serialisation(cnf, graph, m, a_vars, b_vars):
    """Forbid (Up, 1) and (Down, 0) across every non-input edge."""
    non_inputs = graph.non_inputs
    for source, label, target in graph.edges:
        if label is EPSILON or label[0] not in non_inputs:
            continue
        for k in range(m):
            au, bu = a_vars[source][k], b_vars[source][k]
            av, bv = a_vars[target][k], b_vars[target][k]
            # (Up, 1): bits (0,1) -> (1,0)
            cnf.add_clause([au, -bu, -av, bv])
            # (Down, 0): bits (1,1) -> (0,0)
            cnf.add_clause([-au, -bu, av, bv])


def _add_serialisation_flags(cnf, graph, m, a_vars, b_vars):
    """Serialisation indicators: "a new signal fires before an output".

    For every edge ``s --o--> w`` labelled by a non-input ``o`` and every
    state signal ``k``, two term variables hold iff the signal takes the
    value pair (Up, 1) resp. (Down, 0) across the edge -- the orderings
    that strip ``o``'s excitation from the pre-transition half of the
    split state.  Returns:

    * ``flags``: per-state aggregate ``S_s`` ("serialises *some* output"),
      consumed by :func:`_add_implied_consistency` -- harmless between
      equal-code partners that serialise alike, dangerous when exactly
      one side does;
    * ``terms``: ``(state, output, k) -> (up_term, down_term)``, consumed
      by :func:`_add_output_persistence`.

    Both directions of each equivalence are encoded: the variables occur
    with both polarities downstream.
    """
    flags = {}
    terms = {}
    non_inputs = graph.non_inputs
    by_source = {}
    for source, label, target in graph.edges:
        if label is EPSILON or label[0] not in non_inputs:
            continue
        by_source.setdefault(source, []).append((label[0], target))
    for source, out_edges in by_source.items():
        state_terms = []
        for output, target in out_edges:
            for k in range(m):
                au, bu = a_vars[source][k], b_vars[source][k]
                av, bv = a_vars[target][k], b_vars[target][k]
                up_one = cnf.new_var()
                # up_one <-> (Up at source, 1 at target): bits (0,1,1,0).
                cnf.add_clause([-up_one, -au])
                cnf.add_clause([-up_one, bu])
                cnf.add_clause([-up_one, av])
                cnf.add_clause([-up_one, -bv])
                cnf.add_clause([up_one, au, -bu, -av, bv])
                down_zero = cnf.new_var()
                # down_zero <-> (Down at source, 0 at target): (1,1,0,0).
                cnf.add_clause([-down_zero, au])
                cnf.add_clause([-down_zero, bu])
                cnf.add_clause([-down_zero, -av])
                cnf.add_clause([-down_zero, -bv])
                cnf.add_clause([down_zero, -au, -bu, av, bv])
                terms[(source, output, k)] = (up_one, down_zero)
                state_terms.extend((up_one, down_zero))
        flag = cnf.new_var()
        for term in state_terms:
            cnf.add_clause([-term, flag])
        cnf.add_clause([-flag] + state_terms)
        flags[source] = flag
    return flags, terms


def _add_output_persistence(cnf, graph, m, serial_terms):
    """Serialisation must propagate backwards through excitation regions.

    If state ``s`` serialises a state signal before output ``o`` on
    signal ``k``, the pre-transition half ``s_pre`` does not excite
    ``o``.  Every expansion predecessor that *does* excite ``o`` would
    then watch ``o`` lose its excitation without firing -- a glitch in
    some delay assignment.  The remedy: along every edge ``u -> s`` where
    both endpoints excite ``o``, serialisation at ``s`` implies
    serialisation at ``u`` (on the same signal ``k``), pushing the state
    signal's firing back to before ``o`` became excited.
    """
    for source, label, target in graph.edges:
        if label is EPSILON:
            continue
        fired = label[0]
        source_excited = graph.excitation(source)
        target_excited = graph.excitation(target)
        for output in target_excited:
            if output == fired or output not in source_excited:
                continue
            for k in range(m):
                down_terms = serial_terms.get((target, output, k))
                up_terms = serial_terms.get((source, output, k))
                if down_terms is None or up_terms is None:
                    continue
                t_up, t_down = down_terms
                u_up, u_down = up_terms
                cnf.add_clause([-t_up, u_up, u_down])
                cnf.add_clause([-t_down, u_up, u_down])


def _add_implied_consistency(cnf, m, a_vars, b_vars, i, j, serial_flags):
    """Keep every signal's implied value well-defined across i and j.

    The exact condition: the split products of the two states collide
    only when every new signal's code spans overlap, and a collision is
    harmful when some signal's implied values disagree on it -- either a
    new signal's own (the ``g_k`` flags) or an original output's, which
    can only diverge when exactly one of the states serialises a new
    signal before that output (the ``S`` flags; symmetric serialisation
    strips the same excitation from both sides).  Encoded with per-signal
    stable-separation selectors ``d_k``:

    * ``(d_1 | ... | d_m | -g_k)`` for every ``k``;
    * ``(d_1 | ... | d_m | -S_i | S_j)`` and the mirror image.
    """
    separators = []
    disagreements = []
    for k in range(m):
        ai, aj = a_vars[i][k], a_vars[j][k]
        bi, bj = b_vars[i][k], b_vars[j][k]
        d = cnf.new_var()
        cnf.add_clause([-d, ai, aj])
        cnf.add_clause([-d, -ai, -aj])
        cnf.add_clause([-d, -bi])
        cnf.add_clause([-d, -bj])
        separators.append(d)
        g = cnf.new_var()
        # combo -> g; only this direction is needed because g occurs
        # negatively in the final clauses (a spurious g merely
        # strengthens them, and g is free to be False otherwise).
        for combo in _INCONSISTENT_COMBOS:
            clause = [g]
            for var, bit in zip((ai, bi, aj, bj), combo):
                clause.append(-var if bit else var)
            cnf.add_clause(clause)
        disagreements.append(g)
    for g in disagreements:
        cnf.add_clause(separators + [-g])
    flag_i = serial_flags.get(i)
    flag_j = serial_flags.get(j)
    if flag_i is not None and flag_j is not None:
        cnf.add_clause(separators + [-flag_i, flag_j])
        cnf.add_clause(separators + [flag_i, -flag_j])
    elif flag_i is not None:
        cnf.add_clause(separators + [-flag_i])
    elif flag_j is not None:
        cnf.add_clause(separators + [-flag_j])


def formula_stats(formula):
    """``(num_vars, num_clauses)`` of a built formula."""
    return (formula.num_vars, formula.num_clauses)


class IncrementalCscFormula:
    """The SAT-CSC formula family of one grow-``m`` loop, *monotone*.

    :func:`build_csc_formula` produces one frozen CNF per ``(m,
    allow_serialisation)`` attempt; every attempt of a module's grow-m
    loop therefore starts a cold solver.  This class restates the same
    three constraint families so that attempts **compose**: clauses are
    only ever added, and each attempt is the current clause database
    decided under *assumptions* -- so one
    :class:`~repro.sat.incremental.IncrementalSolver` serves the whole
    loop and its learned clauses (including the refutation that proved
    ``m`` infeasible) carry forward into ``m + 1``.

    The guard scheme:

    ``e_k`` (column enable, one per state signal)
        Every clause that constrains column ``k``'s value bits -- edge
        compatibility, the input-edge bans -- is written as
        ``e_k -> clause``, and a column's distinction/separator
        selectors imply ``e_k``.  The ``m``-attempt assumes
        ``e_1 .. e_m``; a column beyond ``m`` (none exist today, because
        columns grow lazily, but the encoding does not depend on that)
        is switched off wholesale by leaving its enable free.

    ``noserial`` (serialisation guard, one per formula)
        The ban-serialisation family is written ``noserial -> clause``.
        The banned variant assumes ``noserial``, the permissive variant
        assumes ``-noserial`` -- the two variants of one ``m`` are two
        assumption sets over one shared clause database.  Under
        ``noserial`` every serialisation term is forced false, which
        satisfies the (always present) flag and persistence machinery,
        so the banned variant is equisatisfiable with the dedicated
        banned formula of the one-shot path.

    ``act_m`` (attempt activation, one per tried ``m``)
        The clauses that are *stronger* for smaller ``m`` -- "some of
        the first ``m`` selectors holds" (distinction), "``m``-column
        separation or no disagreement" (implied consistency) -- are
        written ``act_m -> clause``.  Attempt ``m`` assumes ``act_m``;
        once the loop grows past ``m``, ``act_m`` is left free and the
        obsolete stronger clauses are inert (their learned consequences
        all carry ``-act_m`` and stay sound).

    Serialisation flags, whose one-shot form aggregates terms over all
    ``m`` columns in one biconditional, become per-state *chains*:
    ``F^k <-> F^(k-1) or (column-k terms)``, so column growth appends
    clauses instead of rewriting the aggregate; the ``m``-attempt's
    consistency clauses reference ``F^m``.

    On an UNSAT attempt the solver's failed-assumption core refines the
    loop: a banned-variant core that does not contain ``noserial``
    proves the permissive variant of the same ``m`` unsatisfiable too,
    so the loop skips it outright.

    Optimisation weights (the BDD engine's minimum-excitation models)
    are *not* carried over: incremental solving is only used with the
    search engines, which ignore weights.
    """

    def __init__(self, graph, outputs=None, extra_codes=None,
                 extra_implied=None, conflict_pairs=None,
                 solver=None):
        if conflict_pairs is None:
            conflict_pairs = csc_conflicts(
                graph, outputs=outputs, extra_codes=extra_codes,
                extra_implied=extra_implied,
            )
        intrinsic = [pair for pair in conflict_pairs if pair[0] == pair[1]]
        if intrinsic:
            raise IntrinsicConflictError(
                f"states {sorted({a for a, _ in intrinsic})} have ambiguous "
                "implied values; no state-signal insertion can satisfy CSC"
            )
        self.graph = graph
        self.m = 0
        self.conflict_pairs = list(conflict_pairs)
        conflict_set = set(self.conflict_pairs)
        self.match_pairs = []
        for states in code_classes(graph, extra_codes).values():
            for x, i in enumerate(states):
                for j in states[x + 1:]:
                    if (i, j) not in conflict_set:
                        self.match_pairs.append((i, j))

        self.solver = solver if solver is not None else IncrementalSolver()
        self.noserial = self.solver.new_var()
        self._a = [[] for _ in graph.states()]
        self._b = [[] for _ in graph.states()]
        self._enables = []
        self._acts = {}  # m -> activation literal
        # Distinction selectors per conflict pair, separator/disagreement
        # selectors per match pair; one entry per grown column.
        self._dist = {pair: [] for pair in self.conflict_pairs}
        self._seps = {pair: [] for pair in self.match_pairs}
        self._disagrees = {pair: [] for pair in self.match_pairs}
        # The non-ε edges, split by whether an output labels them.
        self._edges = [
            (source, label, target)
            for source, label, target in graph.edges
            if label is not EPSILON
        ]
        non_inputs = graph.non_inputs
        self._output_edges = {}  # source -> [(output, target)], edge order
        for source, label, target in self._edges:
            if label[0] in non_inputs:
                self._output_edges.setdefault(source, []).append(
                    (label[0], target)
                )
        #: serialisation chain flags: state -> [F^1, F^2, ...]
        self._chains = {source: [] for source in self._output_edges}
        self._terms = {}  # (source, output, k) -> (up_one, down_zero)

    @property
    def num_vars(self):
        return self.solver.num_vars

    @property
    def num_clauses(self):
        return self.solver.num_clauses

    def ensure_m(self, m):
        """Grow the clause database to support the ``m``-attempt."""
        while self.m < m:
            self._grow_column()
        if m not in self._acts:
            self._add_activation(m)

    def assumptions(self, m, allow_serialisation):
        """The assumption set selecting one ``(m, variant)`` attempt."""
        if self.m < m or m not in self._acts:
            raise ValueError(f"ensure_m({m}) has not been called")
        guard = -self.noserial if allow_serialisation else self.noserial
        return self._enables[:m] + [self._acts[m], guard]

    def solve(self, m, allow_serialisation, limits=None):
        """Decide one attempt; see :meth:`IncrementalSolver.solve`."""
        self.ensure_m(m)
        return self.solver.solve(
            assumptions=self.assumptions(m, allow_serialisation),
            limits=limits,
        )

    def decode(self, model, m):
        """Decode a SAT model into per-state tuples of :class:`Value`."""
        rows = []
        for state in self.graph.states():
            row = tuple(
                Value.from_bits(
                    1 if model[self._a[state][k]] else 0,
                    1 if model[self._b[state][k]] else 0,
                )
                for k in range(m)
            )
            rows.append(row)
        return rows

    # -- column growth -----------------------------------------------------

    def _grow_column(self):
        """Add state-signal column ``k = self.m`` (monotone: no clause
        touching existing columns is revisited)."""
        k = self.m
        solver = self.solver
        add = solver.add_clause
        a, b = self._a, self._b
        for state in self.graph.states():
            a[state].append(solver.new_var())
        for state in self.graph.states():
            b[state].append(solver.new_var())
        enable = solver.new_var()
        self._enables.append(enable)
        off = -enable
        non_inputs = self.graph.non_inputs

        for source, label, target in self._edges:
            au, bu = a[source][k], b[source][k]
            av, bv = a[target][k], b[target][k]
            # The six successor clauses of _add_edge_compatibility,
            # guarded by the column enable.
            add([off, au, bu, -av])
            add([off, au, -bu, av, bv])
            add([off, au, -bu, -av, -bv])
            add([off, -au, bu, av])
            add([off, -au, -bu, -av, bv])
            add([off, -au, -bu, av, -bv])
            if label[0] not in non_inputs:
                # Input edges: never fire before the environment.
                add([off, au, -bu, -av, bv])
                add([off, -au, -bu, av, bv])
            else:
                # Output edges: the same two orderings are *optionally*
                # banned, guarded by the serialisation guard.
                add([off, -self.noserial, au, -bu, -av, bv])
                add([off, -self.noserial, -au, -bu, av, bv])

        for i, j in self.conflict_pairs:
            ai, aj = a[i][k], a[j][k]
            bi, bj = b[i][k], b[j][k]
            d = solver.new_var()
            add([-d, enable])  # a disabled column separates nothing
            add([-d, ai, aj])
            add([-d, -ai, -aj])
            add([-d, -bi])
            add([-d, -bj])
            self._dist[(i, j)].append(d)

        for i, j in self.match_pairs:
            ai, aj = a[i][k], a[j][k]
            bi, bj = b[i][k], b[j][k]
            d = solver.new_var()
            add([-d, enable])
            add([-d, ai, aj])
            add([-d, -ai, -aj])
            add([-d, -bi])
            add([-d, -bj])
            self._seps[(i, j)].append(d)
            g = solver.new_var()
            for combo in _INCONSISTENT_COMBOS:
                clause = [g]
                for var, bit in zip((ai, bi, aj, bj), combo):
                    clause.append(-var if bit else var)
                add(clause)
            self._disagrees[(i, j)].append(g)

        for source, out_edges in self._output_edges.items():
            column_terms = []
            for output, target in out_edges:
                au, bu = a[source][k], b[source][k]
                av, bv = a[target][k], b[target][k]
                up_one = solver.new_var()
                add([-up_one, -au])
                add([-up_one, bu])
                add([-up_one, av])
                add([-up_one, -bv])
                add([up_one, au, -bu, -av, bv])
                down_zero = solver.new_var()
                add([-down_zero, au])
                add([-down_zero, bu])
                add([-down_zero, -av])
                add([-down_zero, -bv])
                add([down_zero, -au, -bu, av, bv])
                self._terms[(source, output, k)] = (up_one, down_zero)
                column_terms.extend((up_one, down_zero))
            # Chain link: F^k <-> F^(k-1) or (this column's terms).
            chain = self._chains[source]
            flag = solver.new_var()
            tail = [chain[-1]] if chain else []
            for term in tail + column_terms:
                add([-term, flag])
            add([-flag] + tail + column_terms)
            chain.append(flag)

        for source, label, target in self._edges:
            fired = label[0]
            source_excited = self.graph.excitation(source)
            for output in self.graph.excitation(target):
                if output == fired or output not in source_excited:
                    continue
                down_terms = self._terms.get((target, output, k))
                up_terms = self._terms.get((source, output, k))
                if down_terms is None or up_terms is None:
                    continue
                t_up, t_down = down_terms
                u_up, u_down = up_terms
                add([-t_up, u_up, u_down])
                add([-t_down, u_up, u_down])

        self.m = k + 1

    def _add_activation(self, m):
        """Add the per-``m`` clause family under a fresh ``act_m``."""
        if self.m < m:
            raise ValueError(f"cannot activate m={m} with {self.m} columns")
        solver = self.solver
        act = solver.new_var()
        inactive = -act
        for pair in self.conflict_pairs:
            solver.add_clause([inactive] + self._dist[pair][:m])
        for pair in self.match_pairs:
            separators = self._seps[pair][:m]
            for g in self._disagrees[pair][:m]:
                solver.add_clause([inactive] + separators + [-g])
            i, j = pair
            chain_i = self._chains.get(i)
            chain_j = self._chains.get(j)
            flag_i = chain_i[m - 1] if chain_i else None
            flag_j = chain_j[m - 1] if chain_j else None
            if flag_i is not None and flag_j is not None:
                solver.add_clause(
                    [inactive] + separators + [-flag_i, flag_j]
                )
                solver.add_clause(
                    [inactive] + separators + [flag_i, -flag_j]
                )
            elif flag_i is not None:
                solver.add_clause([inactive] + separators + [-flag_i])
            elif flag_j is not None:
                solver.add_clause([inactive] + separators + [-flag_j])
        self._acts[m] = act
