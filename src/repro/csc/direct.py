"""The direct (no-decomposition) method of Vanbekbergen et al.

One monolithic SAT-CSC formula over the complete state graph: all state
pairs, all constraints, no partitioning.  This is the baseline column
"Vanbekbergen et al. (No Decomposition)" of Table 1, including its
characteristic failure mode -- the SAT backtrack limit aborts on the large
benchmarks (:class:`~repro.csc.errors.BacktrackLimitError`).
"""

from __future__ import annotations

from repro import obs
from repro.csc.assignment import Assignment
from repro.csc.insertion import expand
from repro.csc.solve import DEFAULT_MAX_SIGNALS, solve_state_signals
from repro.csc.verify import assert_csc
from repro.obs import Stopwatch
from repro.stategraph.build import build_state_graph
from repro.stategraph.graph import StateGraph


class DirectResult:
    """Outcome of :func:`direct_synthesis`.

    Attributes
    ----------
    graph / expanded:
        The complete state graph and its expansion with state signals.
    assignment:
        The four-valued state-signal assignment found by SAT.
    attempts:
        Per-formula solver statistics (one entry per tried ``m``).
    covers / literals:
        Minimised two-level covers per non-input signal, and their total
        literal count (``None`` when ``minimize=False``).
    seconds:
        End-to-end wall-clock time.
    """

    def __init__(self, graph, expanded, assignment, attempts, covers,
                 literals, seconds):
        self.graph = graph
        self.expanded = expanded
        self.assignment = assignment
        self.attempts = attempts
        self.covers = covers
        self.literals = literals
        self.seconds = seconds

    @property
    def initial_states(self):
        return self.graph.num_states

    @property
    def final_states(self):
        return self.expanded.num_states

    @property
    def initial_signals(self):
        return len(self.graph.signals)

    @property
    def final_signals(self):
        return len(self.graph.signals) + self.assignment.num_signals

    @property
    def state_signals(self):
        return self.assignment.num_signals

    def __repr__(self):
        return (
            f"DirectResult(states {self.initial_states}->"
            f"{self.final_states}, signals {self.initial_signals}->"
            f"{self.final_signals}, literals={self.literals}, "
            f"{self.seconds:.2f}s)"
        )


def solve_csc_direct(graph, limits=None, max_signals=DEFAULT_MAX_SIGNALS,
                     signal_prefix="csc", max_refinements=10, engine="hybrid",
                     budget=None, fallback=False, sat_mode="incremental"):
    """Solve CSC on the whole graph with one monolithic formula.

    The SAT encoding constrains state *codes*; in rare corner cases the
    chosen interleavings between a state signal and a concurrent output
    only surface as a CSC violation after expansion.  Those violations are
    mapped back to state pairs, added as extra distinction constraints,
    and the formula is re-solved (a verify-and-refine loop standing in for
    the concurrency terms of the original formulation).

    Returns ``(assignment, outcome, expanded)``.
    """
    from repro.csc.errors import SynthesisError
    from repro.stategraph.csc import csc_conflicts

    extra_pairs = []
    attempts = []
    for _round in range(max_refinements):
        if budget is not None:
            budget.checkpoint("direct-solve")
        with obs.span("direct_solve", round=_round):
            outcome = solve_state_signals(
                graph, limits=limits, max_signals=max_signals,
                extra_conflict_pairs=tuple(extra_pairs), engine=engine,
                budget=budget, fallback=fallback, sat_mode=sat_mode,
            )
        attempts.extend(outcome.attempts)
        outcome.attempts = attempts
        names = [f"{signal_prefix}{k}" for k in range(outcome.m)]
        assignment = Assignment(names, outcome.rows)
        expanded, origins = expand(graph, assignment, return_origins=True)
        violations = csc_conflicts(expanded)
        if not violations:
            return assignment, outcome, expanded
        new_pairs = set()
        for p, q in violations:
            a, b = sorted((origins[p], origins[q]))
            if a != b:
                new_pairs.add((a, b))
        new_pairs -= set(extra_pairs)
        if not new_pairs:
            raise SynthesisError(
                "expansion-level CSC violations could not be mapped to new "
                "state-pair constraints"
            )
        extra_pairs.extend(sorted(new_pairs))
    raise SynthesisError(
        f"CSC refinement did not converge in {max_refinements} rounds"
    )


def direct_synthesis(stg, options=None):
    """Run the full direct flow: state graph, monolithic SAT, expansion.

    Parameters
    ----------
    stg:
        A :class:`~repro.stg.model.SignalTransitionGraph`, or an already
        built :class:`~repro.stategraph.graph.StateGraph`.
    options:
        A :class:`~repro.runtime.options.SynthesisOptions`; this method
        reads ``limits`` (SAT budget -- exceeding it raises
        :class:`~repro.csc.errors.BacktrackLimitError`, mirroring the
        paper's aborted runs), ``minimize``, ``max_signals``,
        ``signal_prefix``, ``engine``, ``polish``, ``budget`` and
        ``fallback``.

    Returns
    -------
    DirectResult
    """
    from repro.runtime.options import coerce_options

    opts = coerce_options(options, "direct_synthesis")
    watch = Stopwatch()
    budget = opts.budget
    if isinstance(stg, StateGraph):
        graph = stg
    else:
        graph = build_state_graph(stg, budget=budget)

    assignment, outcome, expanded = solve_csc_direct(
        graph, limits=opts.limits,
        max_signals=opts.resolved_max_signals(DEFAULT_MAX_SIGNALS),
        signal_prefix=opts.resolved_prefix("csc"), engine=opts.engine,
        budget=budget, fallback=opts.fallback, sat_mode=opts.sat_mode,
    )
    if opts.polish:
        from repro.csc.polish import polish_assignment

        with obs.span("polish"):
            assignment = polish_assignment(graph, assignment)
            expanded = expand(graph, assignment)
    assert_csc(expanded, context="direct synthesis result")
    from repro.csc.synthesis import _assert_realizable

    _assert_realizable(graph, assignment)

    covers = literals = None
    if opts.minimize:
        from repro.logic.extract import synthesize_logic

        with obs.span("minimize"):
            covers, literals = synthesize_logic(expanded)
    return DirectResult(
        graph, expanded, assignment, outcome.attempts, covers, literals,
        watch.elapsed(),
    )
