"""Post-SAT assignment polishing: shrink excitation regions.

A satisfying SAT assignment is free to mark large swaths of states as
``Up``/``Down``; every excited state splits in two during expansion, so
sprawling excitation regions inflate the final state count and -- because
every split adds a fresh minterm pattern -- the two-level covers.  The
solver has no objective function, so this pass supplies the missing
quality: it walks the excited states and re-stabilises each one (``Up``
to 0 or 1, ``Down`` to 1 or 0) whenever the change provably keeps the
solution correct.

Correctness is re-checked semantically, not via the encoding: a candidate
flip must keep the assignment edge-compatible (cheap, local) and the
*expanded* graph CSC-clean (the ground-truth acceptance test).  Regions
therefore shrink from their boundaries inward until only the genuinely
required transition states stay excited.
"""

from __future__ import annotations

from repro.csc.assignment import Assignment
from repro.csc.errors import SynthesisError
from repro.csc.insertion import expand
from repro.csc.values import Value, edge_compatible
from repro.stategraph.csc import csc_conflicts, persistence_violations
from repro.stategraph.graph import EPSILON

_MAX_PASSES = 4

#: Stable replacement candidates per excited value, in preference order:
#: push the transition later (keep the pre-transition value) first.
_CANDIDATES = {
    Value.UP: (Value.ZERO, Value.ONE),
    Value.DOWN: (Value.ONE, Value.ZERO),
}


def polish_assignment(graph, assignment):
    """Return an equivalent assignment with fewer excited states.

    The result satisfies the same acceptance criterion as the input
    (expanded graph CSC-clean); if the input does not satisfy it, it is
    returned unchanged.
    """
    if assignment.num_signals == 0:
        return assignment
    if not _accepts(graph, assignment):
        return assignment

    rows = [list(row) for row in assignment.values]
    names = assignment.names
    for _pass in range(_MAX_PASSES):
        changed = False
        for state in graph.states():
            for k in range(len(names)):
                value = rows[state][k]
                candidates = _CANDIDATES.get(value)
                if candidates is None:
                    continue
                for candidate in candidates:
                    if not _locally_compatible(
                        graph, rows, state, k, candidate
                    ):
                        continue
                    rows[state][k] = candidate
                    trial = Assignment(
                        names, [tuple(row) for row in rows]
                    )
                    if _accepts(graph, trial):
                        changed = True
                        break
                    rows[state][k] = value
        if not changed:
            break
    return Assignment(names, [tuple(row) for row in rows])


def _locally_compatible(graph, rows, state, k, candidate):
    """Cheap pre-filter: the flip must keep every touching edge legal."""
    for label, target in graph.out_edges(state):
        if label is EPSILON:
            continue
        if not edge_compatible(candidate, rows[target][k]):
            return False
    for label, source in graph.in_edges(state):
        if label is EPSILON:
            continue
        if not edge_compatible(rows[source][k], candidate):
            return False
    return True


def _accepts(graph, assignment):
    """Ground truth: realisable, expansion succeeds, CSC satisfied."""
    if assignment.check_edge_compatibility(graph):
        return False
    if assignment.check_input_realizability(graph):
        return False
    try:
        expanded = expand(graph, assignment)
    except SynthesisError:
        return False
    if csc_conflicts(expanded):
        return False
    return not persistence_violations(expanded)
