"""Exception hierarchy for the CSC solvers."""

from repro.errors import ReproError


class CscError(ReproError):
    """Base class for CSC solving errors."""

    kind = "csc"


class BacktrackLimitError(CscError):
    """The SAT search hit its backtrack (or time) limit.

    This is the paper's "SAT Backtrack Limit" outcome for the direct
    method on the large benchmarks.  Carries the statistics accumulated
    before the abort.
    """

    kind = "backtrack-limit"

    def __init__(self, message, backtracks=None, seconds=None):
        super().__init__(message, backtracks=backtracks, seconds=seconds)
        self.backtracks = backtracks
        self.seconds = seconds


class IntrinsicConflictError(CscError):
    """A merged state has an ambiguous implied value.

    No state-signal coding can repair a modular graph in this condition;
    it indicates the input-set derivation hid a signal it must not have.
    """

    kind = "intrinsic-conflict"


class SynthesisError(CscError):
    """Synthesis failed to produce a CSC-satisfying implementation."""

    kind = "synthesis"
