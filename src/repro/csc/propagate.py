"""Propagation of state-signal assignments (Figure 5).

The cover relation of the quotient maps every state of the complete graph
Σ to the modular state that covers it; the new state signals' values are
simply copied from the covering state to all covered states.
"""

from __future__ import annotations


def propagate(existing, partition_result):
    """Push a module's new state signals back onto the complete graph.

    Parameters
    ----------
    existing:
        The Σ-level :class:`~repro.csc.assignment.Assignment` before this
        module.
    partition_result:
        The :class:`~repro.csc.modular.PartitionResult` of the module.

    Returns
    -------
    Assignment
        ``existing`` extended with the module's new state signals, valued
        on every Σ state through the cover map.
    """
    return existing.lifted_from(
        partition_result.quotient.cover,
        partition_result.macro_assignment,
    )
