"""Complete state coding: encodings, solvers, and the paper's core method.

* :mod:`repro.csc.values` / :mod:`repro.csc.assignment` -- the four-valued
  state-variable domain {0, 1, Up, Down} and per-state assignments.
* :mod:`repro.csc.sat_csc` -- the SAT-CSC constraint encoding.
* :mod:`repro.csc.direct` -- the monolithic (Vanbekbergen-style) baseline.
* :mod:`repro.csc.input_set`, :mod:`repro.csc.modular`,
  :mod:`repro.csc.propagate`, :mod:`repro.csc.synthesis` -- the paper's
  modular partitioning method (Figures 2-6).
* :mod:`repro.csc.insertion` -- state-graph expansion with state signals.
* :mod:`repro.csc.verify` -- CSC verification of solved graphs.
"""

from repro.csc.assignment import Assignment
from repro.csc.direct import DirectResult, direct_synthesis, solve_csc_direct
from repro.csc.errors import (
    BacktrackLimitError,
    CscError,
    IntrinsicConflictError,
    SynthesisError,
)
from repro.csc.input_set import InputSetResult, determine_input_set, sg_triggers
from repro.csc.insertion import expand
from repro.csc.modular import PartitionResult, partition_sat
from repro.csc.propagate import propagate
from repro.csc.sat_csc import CscFormula, build_csc_formula, formula_stats
from repro.csc.solve import AttemptStats, SolveOutcome, solve_state_signals
from repro.csc.synthesis import ModularResult, ModuleReport, modular_synthesis
from repro.csc.values import Value, edge_compatible, merge_values
from repro.csc.verify import assert_csc, verify_csc

__all__ = [
    "Assignment",
    "AttemptStats",
    "BacktrackLimitError",
    "CscError",
    "CscFormula",
    "DirectResult",
    "InputSetResult",
    "IntrinsicConflictError",
    "ModularResult",
    "ModuleReport",
    "PartitionResult",
    "SolveOutcome",
    "SynthesisError",
    "Value",
    "assert_csc",
    "build_csc_formula",
    "determine_input_set",
    "direct_synthesis",
    "edge_compatible",
    "expand",
    "formula_stats",
    "merge_values",
    "modular_synthesis",
    "partition_sat",
    "propagate",
    "sg_triggers",
    "solve_csc_direct",
    "solve_state_signals",
    "verify_csc",
]
