"""CSC verification of (partially) solved state graphs.

Used as the acceptance check of both synthesis methods: after state-signal
insertion, the state graph -- extended by the state-signal code bits --
must satisfy complete state coding, counting the inserted signals as
non-input signals themselves.
"""

from __future__ import annotations

from repro.stategraph.csc import csc_conflicts


def verify_csc(graph, assignment=None):
    """Remaining CSC violations of ``graph`` under ``assignment``.

    Parameters
    ----------
    graph:
        The complete state graph.
    assignment:
        Optional state-signal :class:`~repro.csc.assignment.Assignment`;
        its current-value bits extend the state codes and its implied
        values are checked like any other non-input signal's.

    Returns
    -------
    list
        Conflict pairs; empty iff CSC holds.
    """
    if assignment is None or assignment.num_signals == 0:
        return csc_conflicts(graph)
    return csc_conflicts(
        graph,
        extra_codes=assignment.cur_bits(),
        extra_implied=assignment.implied_bits(),
    )


def assert_csc(graph, assignment=None, context=""):
    """Raise ``AssertionError`` when CSC does not hold."""
    violations = verify_csc(graph, assignment)
    if violations:
        suffix = f" ({context})" if context else ""
        raise AssertionError(
            f"CSC violated by {len(violations)} state pair(s){suffix}: "
            f"{violations[:5]}"
        )
