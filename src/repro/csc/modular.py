"""Modular state graph generation and constraint satisfaction (Figure 4).

Given an output's input signal set, derive the modular state graph Σ_o by
merging away every other signal's transitions, carry the already-inserted
state signals over with Figure 3's merge rules, and solve a (small)
SAT-CSC instance for the new state signals this output needs.
"""

from __future__ import annotations

from repro import obs
from repro.csc.assignment import Assignment
from repro.csc.errors import SynthesisError
from repro.csc.solve import DEFAULT_MAX_SIGNALS, solve_state_signals
from repro.runtime.faults import should_fire as _fault_fires
from repro.stategraph.quotient import quotient


class PartitionResult:
    """Outcome of :func:`partition_sat` for one output.

    Attributes
    ----------
    output:
        The output this module belongs to.
    quotient:
        The :class:`~repro.stategraph.quotient.QuotientGraph` whose macro
        graph is the modular state graph Σ_o.
    macro_assignment:
        Values of the *new* state signals on the macro states.
    outcome:
        The :class:`~repro.csc.solve.SolveOutcome` (formula sizes, solver
        statistics, number of signals).
    """

    def __init__(self, output, quotient_graph, macro_assignment, outcome):
        self.output = output
        self.quotient = quotient_graph
        self.macro_assignment = macro_assignment
        self.outcome = outcome

    @property
    def num_macro_states(self):
        return self.quotient.graph.num_states

    @property
    def signals_added(self):
        return self.macro_assignment.num_signals

    def __repr__(self):
        return (
            f"PartitionResult({self.output!r}, "
            f"macro_states={self.num_macro_states}, "
            f"signals_added={self.signals_added})"
        )


#: Signal cap for non-final fallback attempts; keeps doomed projections
#: from burning time before a less aggressive one is tried.
_FALLBACK_SIGNAL_CAP = 4


def partition_sat(graph, output, input_set, existing, limits=None,
                  max_signals=DEFAULT_MAX_SIGNALS, name_start=0,
                  signal_prefix="csc", engine="hybrid", budget=None,
                  fallback=False, cache=None, sat_mode="incremental"):
    """Solve the CSC constraints of one output on its modular graph.

    The greedy input-set derivation only guarantees the conflict count
    does not grow; occasionally the projection it picks is *unsolvable*
    (hiding a mode signal can merge two structurally identical phases so
    tightly that no stable separation exists).  When that happens the
    most recently hidden signal is restored and the module re-solved --
    degenerating, in the worst case, to the whole graph restricted to
    this output's conflicts.  This fallback is a documented deviation
    from the paper (DESIGN.md §5).

    Parameters
    ----------
    graph:
        The complete state graph Σ.
    output:
        The output signal being processed.
    input_set:
        The :class:`~repro.csc.input_set.InputSetResult` for this output.
    existing:
        State-signal :class:`~repro.csc.assignment.Assignment` over Σ.
    limits:
        SAT budget per formula.
    name_start:
        Index from which new state signals are numbered (state signal
        names are global across the synthesis run).
    budget / fallback / sat_mode:
        Optional run-wide :class:`~repro.runtime.budget.Budget`, the
        engine-fallback ladder switch and the incremental/one-shot SAT
        mode, all forwarded to the solve loop.
    cache:
        Optional :class:`~repro.perf.ProjectionCache` over ``graph``.
        The input-set derivation already projected every prefix of
        ``removal_order``, so with the run's shared cache both the
        initial projection and every un-hiding fallback step are hits.

    Returns
    -------
    PartitionResult
    """
    if _fault_fires("module-solve", detail=output):
        raise SynthesisError(
            f"injected fault: modular solve failed for {output!r}"
        )
    hidden = list(input_set.removal_order)
    last_error = None
    while True:
        if budget is not None:
            budget.checkpoint(f"module:{output}")
        with obs.span("project", output=output) as project_span:
            if cache is not None:
                q = cache.project(hidden)
            else:
                q = quotient(graph, hidden)
            project_span.add("macro_states", q.graph.num_states)
        restricted = existing.restricted(input_set.kept_state_signals)
        merged = restricted.merged_over(q.blocks)
        if merged is None:
            raise SynthesisError(
                f"state-signal values do not merge over the modular graph "
                f"of {output!r}; the input set derivation should have "
                "prevented this"
            )
        cap = max_signals if not hidden else min(
            max_signals, _FALLBACK_SIGNAL_CAP
        )
        try:
            outcome = solve_state_signals(
                q,
                outputs=[output],
                extra_codes=merged.cur_bits(),
                limits=limits,
                max_signals=cap,
                engine=engine,
                on_limit="skip",
                budget=budget,
                fallback=fallback,
                sat_mode=sat_mode,
            )
        except SynthesisError as exc:
            if not hidden:
                raise
            last_error = exc
            hidden.pop()  # restore the most recently hidden signal
            continue
        names = [
            f"{signal_prefix}{name_start + k}" for k in range(outcome.m)
        ]
        macro_assignment = Assignment(names, outcome.rows)
        result = PartitionResult(output, q, macro_assignment, outcome)
        result.fallback_unhidden = sorted(
            set(input_set.removal_order) - set(hidden)
        )
        result.fallback_error = last_error
        return result
