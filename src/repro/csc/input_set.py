"""Input signal set derivation (Figure 2 of the paper).

The *input signal set* ``I_S(o)`` of an output is the minimum set of STG
signals required to implement its logic: the signals whose transitions
directly trigger ``o`` (the immediate input set) plus whatever else is
needed to keep the CSC conflict count and the state-signal lower bound
from growing.  Every other signal is greedily removed -- its transitions
are ε-labelled and the states they connect merged away.
"""

from __future__ import annotations

from repro.stategraph.csc import csc_conflicts_and_bound
from repro.stategraph.graph import EPSILON
from repro.stategraph.quotient import quotient


class InputSetResult:
    """Outcome of :func:`determine_input_set`.

    Attributes
    ----------
    output:
        The output signal the set belongs to.
    immediate:
        Signals with a direct causal edge into the output (never removed).
    kept_signals:
        The derived input set ``I_S(o)`` (excluding the output itself).
    hidden_signals:
        Signals removed from the modular graph.
    kept_state_signals / dropped_state_signals:
        Which previously inserted state signals remain part of the code.
    conflicts / lower_bound:
        CSC conflict count and state-signal lower bound of the final
        modular graph (what ``partition_sat`` will have to solve).
    """

    def __init__(self, output, immediate, kept_signals, hidden_signals,
                 kept_state_signals, dropped_state_signals, conflicts,
                 lower_bound, removal_order=()):
        self.output = output
        self.immediate = sorted(immediate)
        self.kept_signals = sorted(kept_signals)
        self.hidden_signals = sorted(hidden_signals)
        self.kept_state_signals = list(kept_state_signals)
        self.dropped_state_signals = list(dropped_state_signals)
        self.conflicts = conflicts
        self.lower_bound = lower_bound
        #: Hidden signals in the order the greedy loop removed them; used
        #: by partition_sat's fallback to un-hide the most recent first.
        self.removal_order = list(removal_order)

    def __repr__(self):
        return (
            f"InputSetResult({self.output!r}, keep={self.kept_signals}, "
            f"hide={self.hidden_signals}, "
            f"state_signals={self.kept_state_signals})"
        )


def sg_triggers(graph, output):
    """Signals whose firing makes ``output`` become excited.

    This is the state-graph reading of the paper's "direct causal
    relationship" (Section 3.2): ``s`` triggers ``o`` when some edge
    ``M --s*--> M'`` turns on ``o``'s excitation.  Only the in-edges of
    states exciting ``output`` are examined -- the rest of the edge list
    cannot contain a trigger.
    """
    triggers = set()
    for state in graph.states():
        if output not in graph.excitation(state):
            continue
        for label, source in graph.in_edges(state):
            if label is EPSILON:
                continue
            signal, _direction = label
            if signal == output:
                continue
            if output not in graph.excitation(source):
                triggers.add(signal)
    return triggers


def determine_input_set(graph, output, existing, cache=None):
    """Derive ``I_S(output)`` by greedy signal removal (Figure 2).

    Parameters
    ----------
    graph:
        The complete state graph Σ.
    output:
        The output signal being synthesised.
    existing:
        The :class:`~repro.csc.assignment.Assignment` of state signals
        inserted by earlier iterations (possibly empty).
    cache:
        Optional :class:`~repro.perf.ProjectionCache` over ``graph``.
        The greedy loop only ever projects supersets of its current
        hidden set, so with a cache every trial is served as a hit or a
        single incremental refinement of the projection in hand instead
        of a from-scratch merge of Σ.

    Returns
    -------
    InputSetResult
    """
    if output not in graph.non_inputs:
        raise ValueError(f"{output!r} is not a non-input signal of the graph")

    immediate = sg_triggers(graph, output)
    keep = set(immediate) | {output}
    hidden = set()
    removal_order = []
    kept_state_signals = list(existing.names)

    def metrics(hidden_trial, state_signal_trial):
        """(conflicts, lower bound) of the trial projection, or None."""
        if cache is not None:
            q = cache.project(hidden_trial)
        else:
            q = quotient(graph, hidden_trial)
        restricted = existing.restricted(state_signal_trial)
        merged = restricted.merged_over(q.blocks)
        if merged is None:
            return None  # Figure 3(j,k): inconsistent state-signal merge
        extra = merged.cur_bits()
        conflicts, bound = csc_conflicts_and_bound(
            q, outputs=[output], extra_codes=extra
        )
        return len(conflicts), bound

    conflicts, bound = metrics(hidden, kept_state_signals)

    for signal in graph.signals:
        if signal in keep:
            continue
        trial = metrics(hidden | {signal}, kept_state_signals)
        if trial is not None and trial[0] <= conflicts and trial[1] <= bound:
            hidden.add(signal)
            removal_order.append(signal)
            conflicts, bound = trial
        else:
            keep.add(signal)

    dropped_state_signals = []
    for name in list(existing.names):
        trial_names = [n for n in kept_state_signals if n != name]
        trial = metrics(hidden, trial_names)
        if trial is not None and trial[0] <= conflicts and trial[1] <= bound:
            kept_state_signals = trial_names
            dropped_state_signals.append(name)
            conflicts, bound = trial

    return InputSetResult(
        output,
        immediate,
        kept_signals=keep - {output},
        hidden_signals=hidden,
        kept_state_signals=kept_state_signals,
        dropped_state_signals=dropped_state_signals,
        conflicts=conflicts,
        lower_bound=bound,
        removal_order=removal_order,
    )
