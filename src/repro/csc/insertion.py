"""Expansion of a state graph with state-signal transitions.

Once the SAT solution assigns every state a four-valued value per state
signal, the graph is *expanded* (Section 3.5): every state with an excited
value (``Up``/``Down``) splits into a pre-transition and a post-transition
state joined by the state signal's own edge.  The expanded graph is an
ordinary state graph whose code includes the state signals; Table 1's
"final no. of states" column counts its states.
"""

from __future__ import annotations

from repro.csc.errors import SynthesisError
from repro.csc.values import Value, edge_compatible
from repro.stategraph.graph import EPSILON, StateGraph
from repro.stg.model import FALL, RISE


def expand(graph, assignment, return_origins=False):
    """Expand ``graph`` with the state signals of ``assignment``.

    Parameters
    ----------
    graph:
        The complete state graph Σ.
    assignment:
        An edge-compatible :class:`~repro.csc.assignment.Assignment` over
        its states.
    return_origins:
        Also return ``origins`` mapping every expanded state back to the
        Σ state it was split from.

    Returns
    -------
    StateGraph or (StateGraph, list)
        A graph over ``graph.signals + assignment.names`` in which every
        state signal is an ordinary (internal, non-input) signal.
    """
    problems = assignment.check_edge_compatibility(graph)
    if problems:
        source, target, name = problems[0]
        raise SynthesisError(
            f"assignment of {name!r} is not edge-compatible along "
            f"{source}->{target} (plus {len(problems) - 1} more)"
        )

    signals = list(graph.signals)
    non_inputs = set(graph.non_inputs)
    codes = [list(code) for code in graph.codes]
    edges = list(graph.edges)
    initial = graph.initial
    origins = list(graph.states())
    # Remaining four-valued columns, re-indexed as states split.
    columns = [assignment.column(name) for name in assignment.names]

    for index, name in enumerate(assignment.names):
        values = columns[index]
        codes, edges, initial, state_map = _expand_one(
            codes, edges, initial, values, name
        )
        signals.append(name)
        non_inputs.add(name)
        # Re-index later columns and origins: splits inherit from the old
        # state.
        new_origins = [None] * len(codes)
        for old_state, new_states in enumerate(state_map):
            for new_state in new_states:
                new_origins[new_state] = origins[old_state]
        origins = new_origins
        for later in range(index + 1, len(columns)):
            old = columns[later]
            new = [None] * len(codes)
            for old_state, new_states in enumerate(state_map):
                for new_state in new_states:
                    new[new_state] = old[old_state]
            columns[later] = new

    expanded = StateGraph(
        signals,
        [tuple(code) for code in codes],
        edges,
        non_inputs=non_inputs,
        initial=initial,
    )
    if return_origins:
        return expanded, origins
    return expanded


def _expand_one(codes, edges, initial, values, name):
    """Split the states excited for one state signal.

    Returns ``(codes, edges, initial, state_map)`` where ``state_map[old]``
    lists the new ids for each old state (one entry for stable states,
    ``[pre, post]`` for excited ones).
    """
    new_codes = []
    state_map = []
    pre_of = {}
    post_of = {}
    for state, code in enumerate(codes):
        value = values[state]
        if value.excited:
            pre_bit, post_bit = (0, 1) if value is Value.UP else (1, 0)
            pre = len(new_codes)
            new_codes.append(code + [pre_bit])
            post = len(new_codes)
            new_codes.append(code + [post_bit])
            pre_of[state] = pre
            post_of[state] = post
            state_map.append([pre, post])
        else:
            only = len(new_codes)
            new_codes.append(code + [value.cur])
            pre_of[state] = only
            post_of[state] = only
            state_map.append([only])

    new_edges = []
    # The state signal's own transitions.
    for state, value in enumerate(values):
        if value is Value.UP:
            new_edges.append((pre_of[state], (name, RISE), post_of[state]))
        elif value is Value.DOWN:
            new_edges.append((pre_of[state], (name, FALL), post_of[state]))

    for source, label, target in edges:
        x, y = values[source], values[target]
        if not edge_compatible(x, y):
            raise SynthesisError(
                f"values {x} -> {y} of {name!r} are incompatible along "
                f"edge {source}->{target}"
            )
        if x == y:
            # Stable-stable copies once; excited-excited copies both sides
            # (the other signal's firing commutes with this one's).
            new_edges.append((pre_of[source], label, pre_of[target]))
            if x.excited:
                new_edges.append((post_of[source], label, post_of[target]))
        elif not x.excited and y.excited:
            # 0 -> Up or 1 -> Down: enter the target's pre-transition half.
            new_edges.append((pre_of[source], label, pre_of[target]))
        else:
            # Up -> 1 or Down -> 0: the signal fired inside the source.
            new_edges.append((post_of[source], label, pre_of[target]))

    return new_codes, new_edges, pre_of[initial], state_map
