"""The shared solve loop: grow ``m`` until the SAT-CSC formula satisfies.

Both the direct method and the modular method follow the same schema
(Figure 4's inner loop): start from the lower bound on state signals,
derive the boolean constraint formula, search for a truth assignment, and
add one more state signal whenever the formula is unsatisfiable.
"""

from __future__ import annotations

from repro import obs
from repro.csc.errors import BacktrackLimitError, SynthesisError
from repro.csc.sat_csc import IncrementalCscFormula, build_csc_formula
from repro.obs import Counters, Stopwatch
from repro.runtime.faults import should_fire as _fault_fires
from repro.sat import solve_with
from repro.sat.solver import LIMIT, SAT, SolveResult
from repro.stategraph.csc import csc_conflicts, csc_lower_bound

#: Safety cap: no benchmark needs anywhere near this many state signals.
DEFAULT_MAX_SIGNALS = 12

#: Engines the incremental SAT core may replace.  ``"dpll"`` stays the
#: era-faithful chronological search (the Table-1 abort regime) and
#: ``"bdd"`` returns minimum-weight models; neither behaviour exists in
#: the incremental solver, so those engines always solve one-shot.
INCREMENTAL_ENGINES = ("hybrid", "cdcl")


class AttemptStats:
    """Statistics of one formula build + solve attempt.

    ``metrics`` is the attempt's :class:`~repro.obs.metrics.Counters`
    bag -- the solver's counters plus the formula size -- shared with
    the trace span that timed the attempt; the classic statistic names
    remain available as properties reading from it.
    """

    def __init__(self, m, num_vars, num_clauses, result):
        self.m = m
        self.status = result.status
        self.metrics = Counters(
            num_vars=num_vars, num_clauses=num_clauses
        ).merge(result.metrics)
        #: ``(engine, status)`` rungs when the fallback ladder escalated
        #: this attempt, else ``()``.
        self.escalations = tuple(getattr(result, "escalations", None) or ())

    @property
    def num_vars(self):
        return self.metrics["num_vars"]

    @property
    def num_clauses(self):
        return self.metrics["num_clauses"]

    @property
    def decisions(self):
        return self.metrics["decisions"]

    @property
    def backtracks(self):
        return self.metrics["backtracks"]

    @property
    def seconds(self):
        return self.metrics["seconds"]

    @property
    def escalated(self):
        return len(self.escalations) > 1

    def __repr__(self):
        return (
            f"AttemptStats(m={self.m}, vars={self.num_vars}, "
            f"clauses={self.num_clauses}, {self.status})"
        )


class SolveOutcome:
    """Result of the grow-``m`` loop.

    Attributes
    ----------
    rows:
        Per-state tuples of :class:`~repro.csc.values.Value`, one entry
        per new state signal (empty tuples when none were needed).
    m:
        Number of state signals inserted.
    attempts:
        :class:`AttemptStats` for every formula tried (including the
        unsatisfiable ones).
    seconds:
        Total wall-clock time of the loop.
    """

    def __init__(self, rows, m, attempts, seconds):
        self.rows = rows
        self.m = m
        self.attempts = attempts
        self.seconds = seconds


def solve_state_signals(graph, outputs=None, extra_codes=None,
                        extra_implied=None, limits=None,
                        max_signals=DEFAULT_MAX_SIGNALS,
                        extra_conflict_pairs=(), engine="hybrid",
                        on_limit="raise", conflict_pairs=None,
                        extra_excited=None, budget=None, fallback=False,
                        sat_mode="incremental"):
    """Insert the fewest state signals the SAT search finds satisfiable.

    Parameters
    ----------
    graph:
        Target state graph (complete for the direct method, the modular
        macro graph for the paper's method).
    outputs / extra_codes / extra_implied:
        Conflict definition; see
        :func:`repro.stategraph.csc.csc_conflicts`.
    limits:
        :class:`repro.sat.solver.Limits` budget per solve.
    max_signals:
        Hard cap on ``m`` (malformed inputs would otherwise loop).
    on_limit:
        What to do when a solve exhausts its budget: ``"raise"`` aborts
        with :class:`BacktrackLimitError` (the direct method's Table-1
        behaviour), ``"skip"`` treats the attempt as unsatisfiable and
        moves on to ``m + 1`` (the modular passes prefer trying a larger
        or less aggressive instance over giving up).
    budget / fallback:
        Optional run-wide :class:`~repro.runtime.budget.Budget` (clips
        every per-solve budget, pools backtracks, and adds a checkpoint
        before each attempt) and the engine-fallback ladder switch,
        both forwarded to :func:`repro.sat.solve_with`.
    sat_mode:
        ``"incremental"`` (default) holds one assumption-based
        :class:`~repro.sat.incremental.IncrementalSolver` for the whole
        grow-``m`` loop: learned clauses carry across attempts, the two
        serialisation variants of one ``m`` share a clause database,
        and a banned-variant UNSAT core that never used the
        serialisation guard skips the permissive re-solve outright.
        ``"oneshot"`` rebuilds the CNF and starts a cold engine per
        attempt -- the paper-faithful baseline.  The mode only applies
        to the :data:`INCREMENTAL_ENGINES`; ``"dpll"``/``"bdd"`` keep
        their one-shot semantics regardless.  An incremental attempt
        that exhausts its budget is retried one-shot through
        :func:`~repro.sat.solve_with` (and its escalation ladder when
        ``fallback`` is set) before the ``on_limit`` policy applies --
        the retry is journalled as an ``oneshot_fallback`` event, never
        silent.

    Raises
    ------
    BacktrackLimitError
        When the SAT search exhausts its budget and ``on_limit="raise"``.
    SynthesisError
        When ``max_signals`` is reached without a satisfiable formula.
    IntrinsicConflictError
        When a conflict is intrinsic to a merged state (no coding exists).
    """
    watch = Stopwatch()
    if conflict_pairs is not None:
        # Caller-selected subset (e.g. the sequential baseline resolves
        # one conflict class per round).
        conflicts = list(conflict_pairs)
    else:
        conflicts = csc_conflicts(
            graph, outputs=outputs, extra_codes=extra_codes,
            extra_implied=extra_implied,
        )

    def stably_separated(i, j):
        """True if the pair's split products can never share a code.

        The original signals never split, so any original-code difference
        separates; an existing state signal separates only when its
        values are stable (unexcited) on *both* sides and differ -- an
        excited side spans both code values after expansion.
        """
        if graph.code_of(i) != graph.code_of(j):
            return True
        if extra_codes is None:
            return False
        for k in range(len(extra_codes[i])):
            if extra_codes[i][k] == extra_codes[j][k]:
                continue
            if extra_excited is None:
                continue  # cannot prove stability; keep the pair
            if not extra_excited[i][k] and not extra_excited[j][k]:
                return True
        return False

    for pair in extra_conflict_pairs:
        # Pairs already stably told apart need no new work.
        if not stably_separated(*pair):
            if pair not in conflicts:
                conflicts.append(pair)
    if not conflicts:
        rows = [() for _ in graph.states()]
        return SolveOutcome(rows, 0, [], watch.elapsed())

    if conflict_pairs is not None:
        m = 1  # the subset's own lower bound is not precomputed
    else:
        m = max(
            1,
            _finite(csc_lower_bound(
                graph, outputs=outputs, extra_codes=extra_codes,
                extra_implied=extra_implied,
            )),
        )
    attempts = []
    # Under the skip policy (the modular passes), each m first tries the
    # serialisation-free variant: its solutions keep the original outputs'
    # logic independent of the new signals (smaller covers).  Under the
    # abort policy (the direct baseline) only the permissive formula is
    # solved -- one formula per m, as in the original monolithic method,
    # so a budget exhaustion is attributable to *the* formula.
    variants = (False, True) if on_limit == "skip" else (True,)
    if sat_mode == "incremental" and engine in INCREMENTAL_ENGINES:
        return _grow_incremental(
            graph, conflicts, outputs, extra_codes, extra_implied,
            limits, m, max_signals, variants, engine, on_limit,
            budget, fallback, watch,
        )
    while m <= max_signals:
        for allow_serialisation in variants:
            if budget is not None:
                budget.checkpoint("solve-state-signals")
            with obs.span("encode", m=m) as encode_span:
                formula = build_csc_formula(
                    graph, m, outputs=outputs, extra_codes=extra_codes,
                    extra_implied=extra_implied, conflict_pairs=conflicts,
                    allow_serialisation=allow_serialisation,
                )
                encode_span.add("num_clauses", formula.num_clauses)
                encode_span.add("num_vars", formula.num_vars)
            with obs.span("sat_attempt", m=m, engine=engine) as attempt_span:
                result = solve_with(
                    formula.cnf, limits, engine=engine, fallback=fallback,
                    budget=budget,
                )
                attempt_span.set("status", result.status)
                attempt_span.add("sat_attempts")
                attempt_span.add("num_clauses", formula.num_clauses)
                attempt_span.add("num_vars", formula.num_vars)
                attempt_span.merge(result.metrics)
            if budget is not None:
                budget.charge_backtracks(result.backtracks)
            attempts.append(
                AttemptStats(
                    m, formula.num_vars, formula.num_clauses, result
                )
            )
            if result.status == LIMIT and on_limit != "skip":
                raise BacktrackLimitError(
                    f"SAT backtrack limit reached with m={m} "
                    f"({formula.num_clauses} clauses, "
                    f"{formula.num_vars} vars)",
                    backtracks=result.backtracks,
                    seconds=watch.elapsed(),
                )
            if result.status == SAT:
                rows = formula.decode(result.assignment)
                return SolveOutcome(
                    rows, m, attempts, watch.elapsed()
                )
        m += 1
    raise SynthesisError(
        f"no satisfiable formula up to m={max_signals} state signals"
    )


def _grow_incremental(graph, conflicts, outputs, extra_codes, extra_implied,
                      limits, m, max_signals, variants, engine, on_limit,
                      budget, fallback, watch):
    """The grow-``m`` loop over one persistent incremental solver.

    Semantically identical to the one-shot loop (same attempt order,
    same ``on_limit`` policy, same exceptions); operationally each
    attempt is the shared clause database under a new assumption set,
    so learned clauses carry across variants *and* across ``m``.  Two
    refinements the one-shot loop cannot express:

    * when the banned-serialisation variant is UNSAT and its
      failed-assumption core never used the serialisation guard, the
      permissive variant of the same ``m`` is skipped -- the core
      already proves it unsatisfiable (``variant_skips``);
    * when an incremental attempt runs out of budget, the attempt is
      retried one-shot via :func:`~repro.sat.solve_with` (with the
      escalation ladder when ``fallback`` is set) before the
      ``on_limit`` policy applies; the retry is journalled as an
      ``oneshot_fallback`` point event and counted, never silent.
    """
    attempts = []
    formula = IncrementalCscFormula(
        graph, outputs=outputs, extra_codes=extra_codes,
        extra_implied=extra_implied, conflict_pairs=conflicts,
    )
    while m <= max_signals:
        skip_permissive = False
        for allow_serialisation in variants:
            if allow_serialisation and skip_permissive:
                # The banned-variant core proved this variant UNSAT.
                obs.add("variant_skips")
                continue
            if budget is not None:
                budget.checkpoint("solve-state-signals")
            with obs.span("encode", m=m) as encode_span:
                formula.ensure_m(m)
                encode_span.add("num_clauses", formula.num_clauses)
                encode_span.add("num_vars", formula.num_vars)
            decoder = formula.decode
            with obs.span("sat_attempt", m=m, engine=engine,
                          sat_mode="incremental") as attempt_span:
                attempt_limits = (
                    budget.sub_limits(limits) if budget is not None
                    else limits
                )
                if _fault_fires("solver-limit", detail=engine):
                    result = SolveResult(LIMIT, None, 0, 0, 0, 0.0)
                else:
                    result = formula.solve(
                        m, allow_serialisation, attempt_limits
                    )
                if result.status == LIMIT:
                    obs.add("oneshot_fallbacks")
                    obs.event(
                        "oneshot_fallback", m=m, engine=engine,
                        variant=("permissive" if allow_serialisation
                                 else "banned"),
                    )
                    oneshot = build_csc_formula(
                        graph, m, outputs=outputs, extra_codes=extra_codes,
                        extra_implied=extra_implied,
                        conflict_pairs=conflicts,
                        allow_serialisation=allow_serialisation,
                    )
                    result = solve_with(
                        oneshot.cnf, limits, engine=engine,
                        fallback=fallback, budget=budget,
                    )
                    decoder = lambda model, _m: oneshot.decode(model)
                attempt_span.set("status", result.status)
                attempt_span.add("sat_attempts")
                attempt_span.add("num_clauses", formula.num_clauses)
                attempt_span.add("num_vars", formula.num_vars)
                attempt_span.merge(result.metrics)
            if budget is not None:
                budget.charge_backtracks(result.backtracks)
            attempts.append(
                AttemptStats(
                    m, formula.num_vars, formula.num_clauses, result
                )
            )
            if result.status == LIMIT and on_limit != "skip":
                raise BacktrackLimitError(
                    f"SAT backtrack limit reached with m={m} "
                    f"({formula.num_clauses} clauses, "
                    f"{formula.num_vars} vars)",
                    backtracks=result.backtracks,
                    seconds=watch.elapsed(),
                )
            if result.status == SAT:
                rows = decoder(result.assignment, m)
                return SolveOutcome(rows, m, attempts, watch.elapsed())
            core = getattr(result, "failed_assumptions", None)
            if (not allow_serialisation and core is not None
                    and formula.noserial not in core):
                skip_permissive = True
        m += 1
    raise SynthesisError(
        f"no satisfiable formula up to m={max_signals} state signals"
    )


def _finite(bound):
    """Map an infinite lower bound to a loud failure."""
    if bound == float("inf"):
        from repro.csc.errors import IntrinsicConflictError

        raise IntrinsicConflictError(
            "graph has an intrinsically ambiguous merged state"
        )
    return int(bound)
