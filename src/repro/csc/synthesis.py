"""The complete modular synthesis flow (Figure 6 of the paper).

``modular_synthesis`` drives, for every output signal: input-set
derivation (Figure 2), modular graph construction and SAT solving
(Figures 3-4), and propagation (Figure 5); then expands the complete
state graph with the accumulated state signals and derives two-level
logic.  A verify-and-repair pass guarantees the final expanded graph
satisfies CSC even when greedy per-output decisions leave residual
conflicts (a documented deviation from the paper, which argues the
residue is empty in the worst case after all outputs are processed).
"""

from __future__ import annotations

from repro import obs
from repro.csc.assignment import Assignment
from repro.csc.errors import CscError, SynthesisError
from repro.csc.input_set import determine_input_set
from repro.csc.insertion import expand
from repro.csc.modular import partition_sat
from repro.csc.propagate import propagate
from repro.csc.solve import DEFAULT_MAX_SIGNALS, solve_state_signals
from repro.obs import Stopwatch
from repro.perf import ProjectionCache
from repro.runtime.budget import BudgetExhaustedError
from repro.runtime.options import coerce_options
from repro.runtime.report import (
    MODULE_DEGRADED,
    MODULE_OK,
    MODULE_SKIPPED,
    RUN_OK,
    RUN_TIMEOUT,
    RunReport,
)
from repro.stategraph.build import build_state_graph
from repro.stategraph.csc import csc_conflicts
from repro.stategraph.graph import StateGraph
from repro.sat.solver import Limits

_MAX_REPAIR_ROUNDS = 10

#: Per-formula budget applied when the caller passes no explicit limits.
#: Modular instances are tiny; an instance that exhausts this budget is a
#: sign the projection was too aggressive, and the solve policy moves on
#: (larger m, then the partition_sat un-hiding ladder) instead of hanging.
DEFAULT_MODULAR_LIMITS = Limits(max_backtracks=100_000, max_seconds=10.0)


class ModuleReport:
    """Per-output record of one modular iteration."""

    def __init__(self, output, input_set, partition):
        self.output = output
        self.input_set = input_set
        self.partition = partition

    @property
    def num_macro_states(self):
        return self.partition.num_macro_states

    @property
    def signals_added(self):
        return self.partition.signals_added

    @property
    def attempts(self):
        return self.partition.outcome.attempts

    def __repr__(self):
        return (
            f"ModuleReport({self.output!r}, "
            f"macro_states={self.num_macro_states}, "
            f"signals_added={self.signals_added})"
        )


class ModularResult:
    """Outcome of :func:`modular_synthesis`.

    Attributes
    ----------
    graph / expanded:
        The complete state graph Σ and its final expansion.
    assignment:
        The accumulated state-signal assignment over Σ.
    modules:
        One :class:`ModuleReport` per output, in processing order.
    repair_attempts:
        Solver statistics of the final repair pass (usually empty).
    covers / literals:
        Minimised two-level covers and total literal count
        (``None`` when ``minimize=False``).
    seconds:
        End-to-end wall-clock time.
    """

    def __init__(self, graph, expanded, assignment, modules,
                 repair_attempts, covers, literals, seconds, report=None):
        self.graph = graph
        self.expanded = expanded
        self.assignment = assignment
        self.modules = modules
        self.repair_attempts = repair_attempts
        self.covers = covers
        self.literals = literals
        self.seconds = seconds
        #: Per-module :class:`~repro.runtime.report.RunReport` of the run.
        self.report = report if report is not None else RunReport()

    @property
    def initial_states(self):
        return self.graph.num_states

    @property
    def final_states(self):
        return self.expanded.num_states

    @property
    def initial_signals(self):
        return len(self.graph.signals)

    @property
    def final_signals(self):
        return len(self.graph.signals) + self.assignment.num_signals

    @property
    def state_signals(self):
        return self.assignment.num_signals

    def formula_sizes(self):
        """(clauses, vars) of every SAT formula solved, in order."""
        sizes = []
        for module in self.modules:
            for attempt in module.attempts:
                sizes.append((attempt.num_clauses, attempt.num_vars))
        for attempt in self.repair_attempts:
            sizes.append((attempt.num_clauses, attempt.num_vars))
        return sizes

    def __repr__(self):
        return (
            f"ModularResult(states {self.initial_states}->"
            f"{self.final_states}, signals {self.initial_signals}->"
            f"{self.final_signals}, literals={self.literals}, "
            f"{self.seconds:.2f}s)"
        )


def modular_synthesis(stg, options=None):
    """Synthesise an STG with the paper's modular partitioning method.

    Parameters
    ----------
    stg:
        A :class:`~repro.stg.model.SignalTransitionGraph`, or an already
        built :class:`~repro.stategraph.graph.StateGraph`.
    options:
        A :class:`~repro.runtime.options.SynthesisOptions`.  The fields
        this method reads:

        * ``limits`` -- SAT budget per modular formula (default
          :data:`DEFAULT_MODULAR_LIMITS`);
        * ``minimize`` -- also derive minimised two-level covers;
        * ``max_signals`` / ``signal_prefix`` -- state-signal cap and
          naming;
        * ``output_order`` -- explicit processing order for the
          non-input signals; the default derives the
          smallest-module-first order (and reuses its pre-scan);
        * ``polish`` -- run the assignment polish pass;
        * ``budget`` -- run-wide :class:`~repro.runtime.budget.Budget`
          bounding the whole call.  On exhaustion the raised
          :class:`~repro.runtime.budget.BudgetExhaustedError` carries
          the partial per-module report as ``exc.report``;
        * ``fallback`` -- the engine-fallback ladder on every solve;
        * ``degrade`` -- a failed per-output modular pass does not
          abort the run: the output falls back to a direct sub-solve on
          the full graph (``degraded``), or is left entirely to the
          trailing verify-and-repair rounds (``skipped``).  The outcome
          of every module is recorded in ``result.report``;
          degraded/skipped outputs have no :class:`ModuleReport` in
          ``result.modules``.

    All projections of one run -- the ordering pre-scan, every greedy
    input-set trial, the partition fallback ladder -- go through one
    shared :class:`~repro.perf.ProjectionCache`, so the complete state
    graph is merged from scratch at most a handful of times per run.

    Returns
    -------
    ModularResult
    """
    opts = coerce_options(options, "modular_synthesis")
    watch = Stopwatch()
    limits = opts.resolved_limits(DEFAULT_MODULAR_LIMITS)
    max_signals = opts.resolved_max_signals(DEFAULT_MAX_SIGNALS)
    signal_prefix = opts.resolved_prefix("csc")
    engine = opts.engine
    sat_mode = opts.sat_mode
    budget = opts.budget
    fallback = opts.fallback
    degrade = opts.degrade
    jobs = opts.jobs or 1

    rcache = artifact_key = base_fp = opts_fp = None
    if opts.cache_dir is not None:
        from repro.perf.result_cache import (
            ResultCache,
            graph_fingerprint,
            options_fingerprint,
        )

        rcache = ResultCache(opts.cache_dir, max_bytes=opts.cache_max_bytes)
        opts_fp = options_fingerprint(opts, "modular")
        if isinstance(stg, StateGraph):
            base_fp = graph_fingerprint(stg)
        else:
            from repro.stg.canonical import g_fingerprint

            base_fp = g_fingerprint(stg)
        artifact_key = ResultCache.key(base_fp, opts_fp, "artifact", "modular")
        cached = rcache.get("artifact", artifact_key)
        if cached is not None:
            return cached

    if isinstance(stg, StateGraph):
        graph = stg
    else:
        graph = build_state_graph(stg, budget=budget)

    cache = ProjectionCache(graph)
    prescan = {}
    if opts.output_order:
        outputs = list(opts.output_order)
    else:
        outputs, prescan = _default_output_order(graph, cache)
    unknown = set(outputs) - graph.non_inputs
    if unknown:
        raise ValueError(f"not non-input signals: {sorted(unknown)}")

    prepared, basis, module_keys, sup_stats = _prepare_modules(
        graph, outputs, prescan, cache, rcache, base_fp, opts_fp,
        limits=limits, max_signals=max_signals,
        signal_prefix=signal_prefix, engine=engine, budget=budget,
        fallback=fallback, jobs=jobs, sat_mode=sat_mode,
        retries=opts.retries, retry_backoff=opts.retry_backoff,
    )

    report = RunReport(method="modular", engine=engine)
    if sup_stats is not None:
        report.worker_deaths = sup_stats.worker_deaths
        report.pool_respawns = sup_stats.pool_respawns
    assignment = Assignment.empty(graph.num_states)
    modules = []
    try:
        for output in outputs:
            if budget is not None:
                budget.checkpoint(f"module:{output}")
            assignment = _solve_module(
                graph, output, assignment, modules, report,
                limits=limits, max_signals=max_signals,
                signal_prefix=signal_prefix, engine=engine,
                sat_mode=sat_mode,
                budget=budget, fallback=fallback, degrade=degrade,
                cache=cache, prescan=prescan,
                prepared=prepared, basis=basis, rcache=rcache,
                rkey=module_keys.get(output),
                cacheable=rcache is not None and _cache_safe(budget),
                recovery=sup_stats,
            )

        with obs.span("repair"):
            assignment, expanded, repair_attempts = _repair(
                graph, assignment, limits, max_signals, signal_prefix,
                engine, budget=budget, fallback=fallback,
                sat_mode=sat_mode,
            )
        if opts.polish:
            from repro.csc.polish import polish_assignment

            if budget is not None:
                budget.checkpoint("polish")
            with obs.span("polish"):
                assignment = polish_assignment(graph, assignment)
                expanded = expand(graph, assignment)
        _assert_realizable(graph, assignment)

        covers = literals = None
        if opts.minimize:
            from repro.logic.extract import synthesize_logic

            if budget is not None:
                budget.checkpoint("minimize")
            with obs.span("minimize"):
                covers, literals = synthesize_logic(expanded)
    except BudgetExhaustedError as exc:
        # Leave a faithful partial record: everything not yet finished is
        # skipped, and the report travels on the exception.
        done = {entry.output for entry in report.modules}
        for output in outputs:
            if output not in done:
                report.add_module(
                    output, MODULE_SKIPPED, detail="budget exhausted"
                )
        report.finish(status=RUN_TIMEOUT, error=exc, budget=budget)
        exc.report = report
        raise
    report.finish(budget=budget)
    result = ModularResult(
        graph, expanded, assignment, modules, repair_attempts, covers,
        literals, watch.elapsed(), report=report,
    )
    if (rcache is not None and _cache_safe(budget)
            and report.status == RUN_OK):
        rcache.put("artifact", artifact_key, result)
    return result


def _prepare_modules(graph, outputs, prescan, cache, rcache, base_fp,
                     opts_fp, *, limits, max_signals, signal_prefix,
                     engine, budget, fallback, jobs,
                     sat_mode="incremental", retries=2,
                     retry_backoff=0.05):
    """Pre-solve modules from the result cache and/or a worker pool.

    Returns ``(prepared, basis, module_keys, sup_stats)``:

    * ``prepared`` -- ``{output: entry}`` in the
      :mod:`repro.csc.parallel` entry format, empty for the plain
      serial path (``jobs == 1``, no cache);
    * ``basis`` -- per-output input sets derived against the empty
      assignment (the adoption test of the merge loop compares against
      these), or ``None`` on the plain serial path;
    * ``module_keys`` -- per-output result-cache keys, for storing
      serial solves on the way out;
    * ``sup_stats`` -- the dispatch's
      :class:`~repro.runtime.supervise.SuperviseStats` (``None`` when no
      pool ran), for the run report's recovery bookkeeping.

    Cache lookups come first, then the ``module-solve`` fault check and
    worker dispatch for the remainder -- all in the fixed output order,
    so fault shots and cache counters land deterministically.
    """
    if jobs <= 1 and rcache is None:
        return {}, None, {}, None
    from repro.csc.parallel import PREPARED_PARTITION, prepare_parallel
    from repro.perf.result_cache import ResultCache
    from repro.runtime.supervise import RetryPolicy

    empty = Assignment.empty(graph.num_states)
    basis = dict(prescan)
    for output in outputs:
        if output not in basis:
            basis[output] = determine_input_set(
                graph, output, empty, cache=cache
            )

    prepared = {}
    module_keys = {}
    to_solve = list(outputs)
    if rcache is not None:
        remaining = []
        for output in to_solve:
            key = ResultCache.key(base_fp, opts_fp, "module", output)
            module_keys[output] = key
            payload = rcache.get("module", key)
            if payload is not None:
                payload.quotient.base = graph
                prepared[output] = (PREPARED_PARTITION, payload)
            else:
                remaining.append(output)
        to_solve = remaining

    sup_stats = None
    if jobs > 1 and to_solve:
        dispatched, sup_stats = prepare_parallel(
            graph, to_solve, basis, limits=limits,
            max_signals=max_signals, signal_prefix=signal_prefix,
            engine=engine, budget=budget, fallback=fallback, jobs=jobs,
            sat_mode=sat_mode,
            policy=RetryPolicy(retries=retries, backoff=retry_backoff),
        )
        prepared.update(dispatched)
    return prepared, basis, module_keys, sup_stats


def _cache_safe(budget):
    """May this run's results enter the persistent cache?

    A wall or backtrack budget clips per-solve limits
    (:meth:`~repro.runtime.budget.Budget.sub_limits`), so a budgeted
    run can legitimately produce *different* -- still valid -- results
    than an unbudgeted one; caching them under a key that ignores the
    budget would poison later unbudgeted runs.  A pure state cap is
    safe: it only ever aborts, it never alters a result.
    """
    return budget is None or (
        budget.max_seconds is None and budget.max_backtracks is None
    )


def _reusable(input_set, basis_entry, assignment):
    """May an empty-assignment solve stand in for this module's solve?

    Trivially yes before any state signal exists.  Afterwards, the solve
    only depends on the accumulated assignment through (a) the hidden
    signal list and (b) the kept state signals' merged codes -- so a
    module whose recomputed input set hides the same signals and keeps
    *no* earlier state signal is still the pure function of the input
    the worker (or cache record) computed.  Anything else is
    sequentially dependent and must be re-solved in place.
    """
    if assignment.num_signals == 0:
        return True
    if basis_entry is None:
        return False
    return (
        not input_set.kept_state_signals
        and list(input_set.removal_order) == list(basis_entry.removal_order)
    )


def _detached_for_cache(partition, signal_prefix):
    """A base-named, Σ-detached copy of a partition for the cache.

    Cache records are stored in the worker normal form -- state signals
    numbered from zero, quotient detached from the base graph -- so one
    record serves any run position the merge loop later adopts it at.
    """
    from repro.csc.modular import PartitionResult
    from repro.stategraph.quotient import QuotientGraph

    q = partition.quotient
    macro = partition.macro_assignment
    names = [f"{signal_prefix}{k}" for k in range(macro.num_signals)]
    copy = PartitionResult(
        partition.output,
        QuotientGraph(None, q.graph, q.cover, q.blocks, q.hidden),
        Assignment(names, macro.values),
        partition.outcome,
    )
    copy.fallback_unhidden = list(partition.fallback_unhidden)
    copy.fallback_error = None
    return copy


def _solve_module(graph, output, assignment, modules, report, *,
                  limits, max_signals, signal_prefix, engine, budget,
                  fallback, degrade, cache=None, prescan=None,
                  prepared=None, basis=None, rcache=None, rkey=None,
                  cacheable=False, sat_mode="incremental", recovery=None):
    """One output's modular pass, degrading per policy on failure.

    Returns the extended assignment and appends to ``modules`` /
    ``report`` as a side effect.  A ``prescan`` entry (an
    :class:`~repro.csc.input_set.InputSetResult` derived against the
    empty assignment by ``_default_output_order``) is reused verbatim as
    long as no state signal has been inserted yet -- the derivation is a
    pure function of (graph, output, assignment), and the pre-scan
    already ran it.

    A ``prepared`` entry (worker pool or result cache, see
    :func:`_prepare_modules`) is adopted -- renamed to the names this
    point of the serial run would use -- when :func:`_reusable` holds;
    a sequentially-dependent module falls through to the normal serial
    solve.  Worker errors enter the same ``degrade`` path a serial
    solve failure would, and worker budget exhaustion re-raises here.

    A ``PREPARED_RESCUE`` entry (the supervised dispatch ran out of
    retries for this module's worker) is the *serial rescue*: the
    module falls through to the normal serial solve right here, which
    is bit-identical to what the serial loop would have produced --
    infrastructure failures never reach the ``degrade`` path.

    ``recovery`` is the dispatch's
    :class:`~repro.runtime.supervise.SuperviseStats`; its per-output
    retry/respawn tallies ride into this module's report entry.
    """
    from repro.csc.parallel import (
        PREPARED_BUDGET,
        PREPARED_ERROR,
        PREPARED_PARTITION,
        PREPARED_RESCUE,
        rename_partition,
    )

    retries = recovery.retries.get(output, 0) if recovery else 0
    respawns = recovery.respawns.get(output, 0) if recovery else 0
    rescued = False

    with obs.span("module", output=output) as module_span:
        with obs.span("input_set", output=output) as input_span:
            input_set = None
            if prescan and assignment.num_signals == 0:
                input_set = prescan.get(output)
            if input_set is not None:
                obs.add("prescan_reuses")
                input_span.set("reused", True)
            else:
                input_set = determine_input_set(
                    graph, output, assignment, cache=cache
                )

        partition = None
        cause = None
        entry = prepared.get(output) if prepared else None
        if entry is not None:
            tag = entry[0]
            if tag == PREPARED_BUDGET:
                _, message, resource, point = entry
                raise BudgetExhaustedError(
                    message, resource=resource, point=point
                )
            if tag == PREPARED_ERROR:
                cause = entry[1]
            elif tag == PREPARED_RESCUE:
                # The supervised pool exhausted this module's retries;
                # re-solve it serially in the parent instead of letting
                # an infrastructure failure degrade the circuit.
                rescued = True
                obs.add("serial_rescues")
                module_span.set("rescued", True)
            elif tag == PREPARED_PARTITION:
                if _reusable(input_set, basis.get(output), assignment):
                    partition = rename_partition(
                        entry[1], signal_prefix, assignment.num_signals
                    )
                    obs.add("parallel_adopted")
                    module_span.set("adopted", True)
                else:
                    obs.add("parallel_dependent")
                    module_span.set("dependent", True)

        if partition is None and cause is None:
            try:
                partition = partition_sat(
                    graph, output, input_set, assignment, limits=limits,
                    max_signals=max_signals,
                    name_start=assignment.num_signals,
                    signal_prefix=signal_prefix, engine=engine,
                    budget=budget, fallback=fallback, cache=cache,
                    sat_mode=sat_mode,
                )
            except CscError as exc:
                cause = exc
            else:
                if (cacheable and rkey is not None
                        and _reusable(input_set, basis.get(output),
                                      assignment)):
                    rcache.put(
                        "module", rkey,
                        _detached_for_cache(partition, signal_prefix),
                    )

        if cause is not None:
            if not degrade:
                raise cause
            assignment = _degrade_module(
                graph, output, assignment, report, cause,
                limits=limits, max_signals=max_signals,
                signal_prefix=signal_prefix, engine=engine, budget=budget,
                fallback=fallback, sat_mode=sat_mode,
                retries=retries, respawns=respawns,
            )
            module_span.set("status", report.modules[-1].status)
            return assignment
        escalations = sum(
            1 for attempt in partition.outcome.attempts if attempt.escalated
        )
        with obs.span("propagate", output=output):
            assignment = propagate(assignment, partition)
        modules.append(ModuleReport(output, input_set, partition))
        report.add_module(
            output, MODULE_OK, signals_added=partition.signals_added,
            escalations=escalations, retries=retries, respawns=respawns,
            rescued=rescued,
        )
        module_span.set("status", MODULE_OK)
        module_span.add("signals_added", partition.signals_added)
        return assignment


def _degrade_module(graph, output, assignment, report, cause, *,
                    limits, max_signals, signal_prefix, engine, budget,
                    fallback, sat_mode="incremental", retries=0,
                    respawns=0):
    """Per-output direct sub-solve on the full graph (degraded mode).

    The modular pass failed for this output; instead of aborting the
    whole run, solve its conflicts monolithically on Σ -- the shape the
    repair pass uses -- and record the module as ``degraded``.  If even
    that fails, record ``skipped`` and leave the output to the trailing
    verify-and-repair rounds.
    """
    try:
        outcome = solve_state_signals(
            graph,
            outputs=[output],
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
            extra_excited=assignment.excitation_bits(),
            limits=limits,
            max_signals=max_signals,
            engine=engine,
            on_limit="skip",
            budget=budget,
            fallback=fallback,
            sat_mode=sat_mode,
        )
    except CscError as exc:
        report.add_module(
            output, MODULE_SKIPPED,
            detail=f"{cause}; direct sub-solve failed: {exc}",
            retries=retries, respawns=respawns,
        )
        return assignment
    names = [
        f"{signal_prefix}{assignment.num_signals + k}"
        for k in range(outcome.m)
    ]
    escalations = sum(
        1 for attempt in outcome.attempts if attempt.escalated
    )
    report.add_module(
        output, MODULE_DEGRADED, detail=str(cause),
        signals_added=outcome.m, escalations=escalations,
        retries=retries, respawns=respawns,
    )
    return assignment.extended(names, outcome.rows)


def _assert_realizable(graph, assignment):
    problems = assignment.check_input_realizability(graph)
    if problems:
        raise SynthesisError(
            f"assignment serialises a state signal before an input on "
            f"{len(problems)} edge(s): unrealisable ordering"
        )


def _default_output_order(graph, cache=None):
    """Process outputs with the smallest modular graphs first.

    Local conflicts (completion pulses, echo tails) then insert their
    state signals before the join outputs run; the joins' input-set
    derivation keeps those signals, which often resolves their corner
    conflicts for free.  The paper leaves the iteration order open; this
    is the ordering that makes its "state signals are shared between
    modules" behaviour reliable.

    Returns ``(order, prescan)``: the pre-scan's per-output
    :class:`~repro.csc.input_set.InputSetResult` objects (derived
    against the empty assignment) ride along so the solve loop never
    repeats the derivation, and the shared ``cache`` keeps every
    projection computed here warm for ``partition_sat``.
    """
    if cache is None:
        cache = ProjectionCache(graph)
    empty = Assignment.empty(graph.num_states)
    keys = {}
    prescan = {}
    with obs.span("output_order"):
        for output in sorted(graph.non_inputs):
            input_set = determine_input_set(graph, output, empty, cache=cache)
            prescan[output] = input_set
            macro = cache.project(
                input_set.hidden_signals
            ).graph.num_states
            keys[output] = (macro, input_set.conflicts, output)
    return sorted(keys, key=keys.get), prescan


def _repair(graph, assignment, limits, max_signals, signal_prefix, engine,
            budget=None, fallback=False, sat_mode="incremental"):
    """Resolve residual conflicts until the expanded graph satisfies CSC.

    Each round: expand, look for CSC violations among expanded states, map
    them back to Σ state pairs, and solve a (small) whole-graph formula
    that distinguishes them on top of the existing assignment.
    """
    repair_attempts = []
    extra_pairs = []
    for _round in range(_MAX_REPAIR_ROUNDS):
        if budget is not None:
            budget.checkpoint("repair")
        obs.add("repair_rounds")
        expanded, origins = expand(graph, assignment, return_origins=True)
        violations = csc_conflicts(expanded)
        if not violations:
            return assignment, expanded, repair_attempts
        new_pairs = set()
        for p, q in violations:
            a, b = sorted((origins[p], origins[q]))
            if a != b:
                new_pairs.add((a, b))
        new_pairs -= set(extra_pairs)
        if not new_pairs:
            raise SynthesisError(
                "repair pass cannot make progress on expansion-level "
                "CSC violations"
            )
        extra_pairs.extend(sorted(new_pairs))
        outcome = solve_state_signals(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
            extra_excited=assignment.excitation_bits(),
            extra_conflict_pairs=tuple(extra_pairs),
            limits=limits,
            max_signals=max_signals,
            engine=engine,
            on_limit="skip",
            budget=budget,
            fallback=fallback,
            sat_mode=sat_mode,
        )
        names = [
            f"{signal_prefix}{assignment.num_signals + k}"
            for k in range(outcome.m)
        ]
        assignment = assignment.extended(names, outcome.rows)
        repair_attempts.extend(outcome.attempts)
    raise SynthesisError(
        f"CSC repair did not converge in {_MAX_REPAIR_ROUNDS} rounds"
    )
