"""State-signal assignments over a state graph.

An :class:`Assignment` gives every state of a graph a tuple of four-valued
:class:`~repro.csc.values.Value` entries, one per inserted state signal.
It is the working object threaded through the modular synthesis loop: the
input-set derivation consults it, ``partition_sat`` extends it, and the
final expansion consumes it.
"""

from __future__ import annotations

from repro.csc.values import Value, edge_compatible, merge_values
from repro.stategraph.graph import EPSILON


class Assignment:
    """Four-valued values of named state signals, per state.

    Parameters
    ----------
    names:
        Ordered state signal names.
    values:
        ``values[state]`` is a tuple of :class:`Value`, aligned with
        ``names``.  One entry per state of the graph the assignment
        belongs to.
    """

    def __init__(self, names=(), values=()):
        self.names = tuple(names)
        self.values = [tuple(row) for row in values]
        for row in self.values:
            if len(row) != len(self.names):
                raise ValueError(
                    f"assignment row has {len(row)} entries, expected "
                    f"{len(self.names)}"
                )

    @classmethod
    def empty(cls, num_states):
        """No state signals yet: one empty row per state."""
        return cls((), [()] * num_states)

    @property
    def num_signals(self):
        return len(self.names)

    @property
    def num_states(self):
        return len(self.values)

    def value(self, state, name):
        return self.values[state][self.names.index(name)]

    def column(self, name):
        """All states' values of one state signal."""
        index = self.names.index(name)
        return [row[index] for row in self.values]

    # -- derived bit views --------------------------------------------------

    def cur_bits(self):
        """Per-state tuples of current-value bits (state code extension)."""
        return [tuple(v.cur for v in row) for row in self.values]

    def implied_bits(self):
        """Per-state tuples of implied (next-state) values."""
        return [tuple(v.implied for v in row) for row in self.values]

    def excitation_bits(self):
        """Per-state tuples of excited flags."""
        return [
            tuple(1 if v.excited else 0 for v in row) for row in self.values
        ]

    # -- composition -----------------------------------------------------------

    def extended(self, new_names, new_values):
        """A copy with extra state signals appended."""
        new_names = tuple(new_names)
        if len(new_values) != self.num_states:
            raise ValueError("new values must cover every state")
        names = self.names + new_names
        values = [
            row + tuple(extra) for row, extra in zip(self.values, new_values)
        ]
        return Assignment(names, values)

    def restricted(self, keep):
        """A copy keeping only the named state signals, in original order."""
        keep = set(keep)
        indices = [i for i, n in enumerate(self.names) if n in keep]
        return Assignment(
            tuple(self.names[i] for i in indices),
            [tuple(row[i] for i in indices) for row in self.values],
        )

    # -- checks -------------------------------------------------------------------

    def check_edge_compatibility(self, graph):
        """All values must step legally along every edge of ``graph``.

        Returns a list of violations ``(source, target, name)``; empty when
        the assignment is consistent and semi-modular.
        """
        problems = []
        for source, label, target in graph.edges:
            if label is EPSILON:
                continue
            for k, name in enumerate(self.names):
                before = self.values[source][k]
                after = self.values[target][k]
                if not edge_compatible(before, after):
                    problems.append((source, target, name))
        return problems

    def check_input_realizability(self, graph):
        """Find state-signal firings serialised before *input* edges.

        A value pair (Up, 1) or (Down, 0) across an edge labelled by an
        input signal claims the state signal fires before that input --
        an ordering the circuit cannot impose on its environment.
        Returns ``(source, target, name)`` violations; empty when the
        assignment is realisable.
        """
        problems = []
        non_inputs = graph.non_inputs
        for source, label, target in graph.edges:
            if label is EPSILON or label[0] in non_inputs:
                continue
            for k, name in enumerate(self.names):
                before = self.values[source][k]
                after = self.values[target][k]
                if before.excited and not after.excited \
                        and before.cur != after.cur:
                    problems.append((source, target, name))
        return problems

    # -- quotient interaction ------------------------------------------------------

    def merged_over(self, blocks):
        """Merge this assignment onto the macro states of a quotient.

        Parameters
        ----------
        blocks:
            ``blocks[macro]`` = iterable of member states (as produced by
            :func:`repro.stategraph.quotient.quotient`).

        Returns
        -------
        Assignment or None
            The macro-level assignment, or ``None`` if some region's
            values are inconsistent under Figure 3's merge rules (the
            corresponding signal hiding is then not allowed).
        """
        merged_rows = []
        for members in blocks:
            row = []
            for k in range(self.num_signals):
                merged = merge_values(
                    self.values[member][k] for member in members
                )
                if merged is None:
                    return None
                row.append(merged)
            merged_rows.append(tuple(row))
        return Assignment(self.names, merged_rows)

    def lifted_from(self, cover, macro_assignment):
        """Inverse of :meth:`merged_over`: copy macro values to members.

        ``cover[state] -> macro_state``.  Used by the propagation step
        (Figure 5) to push newly found state-signal values from the
        modular graph back to the complete graph.
        """
        if macro_assignment.num_signals and len(cover) != self.num_states:
            if self.num_states:
                raise ValueError("cover map does not match state count")
        rows = [
            macro_assignment.values[cover[state]]
            for state in range(len(cover))
        ]
        return self.extended(macro_assignment.names, rows)

    def __repr__(self):
        return (
            f"Assignment(signals={list(self.names)}, "
            f"states={self.num_states})"
        )
