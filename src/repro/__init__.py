"""Modular partitioning for asynchronous circuit synthesis.

Reproduction of Puri & Gu, *A Modular Partitioning Approach for Asynchronous
Circuit Synthesis*, DAC 1994.

The public API is re-exported here; see the subpackages for details:

* :mod:`repro.petrinet` -- Petri net kernel (places, transitions, markings,
  reachability).
* :mod:`repro.stg` -- signal transition graphs, including the ``.g`` astg
  file format.
* :mod:`repro.stategraph` -- state graphs with consistent state assignment
  and CSC conflict detection.
* :mod:`repro.sat` -- a DPLL branch-and-bound SAT solver.
* :mod:`repro.csc` -- the SAT-CSC encoding, the direct (Vanbekbergen-style)
  method and the paper's modular partitioning method.
* :mod:`repro.logic` -- two-level logic covers and an espresso-like
  minimizer used for the area (literal-count) results.
* :mod:`repro.baselines` -- the Lavagno/Moon-style state-table baseline.
* :mod:`repro.bench` -- the Table-1 benchmark suite and runner.
"""

from repro.petrinet import Marking, PetriNet
from repro.stg import (
    SignalTransitionGraph,
    SignalType,
    load_stg,
    parse_g,
    write_g,
)
from repro.stategraph import StateGraph, build_state_graph, csc_conflicts
from repro.csc import (
    DirectResult,
    ModularResult,
    direct_synthesis,
    modular_synthesis,
)
from repro.logic import Cover, Cube, espresso, literal_count
from repro.runtime.options import SynthesisOptions
from repro.verify import check_conformance, verify_synthesis

__version__ = "1.0.0"


def synthesize(stg, method="modular", options=None):
    """Synthesise ``stg`` with one call: the recommended entry point.

    A thin facade over :func:`repro.runtime.run.run_synthesis`: hand it
    anything :func:`repro.stg.load.load_stg` accepts (a parsed STG, a
    ``.g`` file path, or raw ``.g`` text), pick a ``method``
    (``"modular"``, ``"direct"`` or ``"lavagno"``), tune it
    with a :class:`~repro.runtime.options.SynthesisOptions`, and get a
    :class:`~repro.runtime.report.RunReport` back -- ``report.result``
    holds the method's result object, ``report.status`` /
    ``report.exit_code`` the verdict, and no
    :class:`~repro.errors.ReproError` ever propagates.

    >>> report = repro.synthesize(stg, options=SynthesisOptions(
    ...     engine="hybrid", minimize=False))
    >>> report.status
    'ok'
    """
    from repro.runtime.run import run_synthesis

    return run_synthesis(stg, method=method, options=options)


__all__ = [
    "Cover",
    "Cube",
    "DirectResult",
    "Marking",
    "ModularResult",
    "PetriNet",
    "SignalTransitionGraph",
    "SignalType",
    "StateGraph",
    "SynthesisOptions",
    "build_state_graph",
    "check_conformance",
    "csc_conflicts",
    "direct_synthesis",
    "espresso",
    "literal_count",
    "load_stg",
    "modular_synthesis",
    "parse_g",
    "synthesize",
    "verify_synthesis",
    "write_g",
    "__version__",
]
