"""The common error base of the whole reproduction.

Every layer raises its own exception classes (``repro.petrinet.errors``,
``repro.stg.errors``, ``repro.csc.errors``, the BDD manager's overflow),
but all of them derive from :class:`ReproError` so that drivers -- the
command line, the benchmark harness, the runtime orchestrator -- can
catch one type and report any failure uniformly.

:class:`ReproError` carries a structured ``context`` mapping alongside
the human-readable message.  Subclasses set :attr:`ReproError.kind` to a
short machine-readable failure class (``"g-format"``,
``"backtrack-limit"``, ``"timeout"``, ...) used in one-line diagnostics
and :class:`~repro.runtime.report.RunReport` entries.

This module is deliberately a leaf: it must import nothing from
:mod:`repro` so the low-level packages can depend on it without cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured error raised by :mod:`repro`.

    Parameters
    ----------
    message:
        Human-readable description.
    context:
        Arbitrary machine-readable details (counts, limits, line
        numbers).  ``None`` values are dropped.
    """

    #: Short machine-readable failure class; subclasses override.
    kind = "error"

    def __init__(self, message, **context):
        super().__init__(message)
        self.context = {
            key: value for key, value in context.items() if value is not None
        }

    def describe(self):
        """One-line diagnostic: ``kind: message (key=value, ...)``."""
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(self.context.items())
        )
        base = f"{self.kind}: {self}"
        return f"{base} ({detail})" if detail else base
