"""Compare the two implementation styles on one benchmark.

Style 1: one complex gate per signal computing its full next-state
function (the paper's area metric).  Style 2: a generalised C-element
per signal, with separate SET and RESET networks covering just the
excitation regions -- the style most speed-independent design flows
target.

Usage::

    python examples/celement_realization.py [benchmark]
"""

import sys

from repro.bench import BENCHMARKS, load_benchmark
from repro.csc import modular_synthesis
from repro.runtime import SynthesisOptions
from repro.logic import equations, synthesize_celements
from repro.logic.extract import synthesize_logic
from repro.logic.format import cover_to_expression
from repro.stategraph import build_state_graph


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "sbuf-read-ctl"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}")

    stg = load_benchmark(name)
    result = modular_synthesis(build_state_graph(stg),
                               options=SynthesisOptions(minimize=False))
    graph = result.expanded
    names = list(graph.signals)

    covers, complex_literals = synthesize_logic(graph)
    implementations, celement_literals = synthesize_celements(graph)

    print(f"{name}: {result.final_signals} signals after synthesis\n")
    print(f"complex-gate style: {complex_literals} literals")
    for line in equations(covers, graph.signals):
        print(f"  {line}")

    print(f"\ngeneralised C-element style: {celement_literals} literals")
    for signal in sorted(implementations):
        impl = implementations[signal]
        set_expr = cover_to_expression(impl.set_cover, names)
        reset_expr = cover_to_expression(impl.reset_cover, names)
        print(f"  {signal}: set = {set_expr}")
        print(f"  {signal:>{len(signal)}}  reset = {reset_expr}")

    delta = complex_literals - celement_literals
    comparison = "saves" if delta > 0 else "costs"
    print(f"\nC-element realisation {comparison} {abs(delta)} literal(s) "
          f"on this controller")


if __name__ == "__main__":
    main()
