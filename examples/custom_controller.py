"""Design a custom asynchronous DMA-grant controller from scratch.

This walks the whole API surface a designer would touch:

1. build the STG with the phase-cycle generator (a request forks two
   concurrent engine handshakes, a done pulse closes the cycle);
2. validate the specification (1-safe, consistent, live);
3. inspect the state graph and its CSC conflicts;
4. synthesise with the modular method;
5. check the resulting covers for static hazards.

Run with::

    python examples/custom_controller.py
"""

from repro.bench.generators import Par, build_g
from repro.csc import modular_synthesis
from repro.logic import equations
from repro.logic.extract import next_state_tables
from repro.logic.hazards import hazard_free_patch, static_hazards
from repro.stategraph import build_state_graph, csc_conflicts
from repro.stg import load_stg, validate_stg
from repro.verify import verify_synthesis


def design_stg():
    """A DMA-grant controller: req forks two engines, done acknowledges."""
    text = build_g(
        "dma-grant",
        inputs=["req", "e1", "e2"],
        outputs=["g1", "g2", "done"],
        cycle=[
            "req+",
            Par(["g1+", "e1+"], ["g2+", "e2+"]),
            "done+",
            "req-",
            Par(["g1-", "e1-"], ["g2-", "e2-"]),
            "done-",
        ],
    )
    print("generated .g specification:\n")
    print(text)
    return load_stg(text)


def main():
    stg = design_stg()
    validate_stg(stg, require_live=True)
    print("validation: 1-safe, consistent, live\n")

    graph = build_state_graph(stg)
    conflicts = csc_conflicts(graph)
    print(f"state graph: {graph.num_states} states, "
          f"{graph.num_edges} edges")
    print(f"CSC conflicts: {len(conflicts)} pair(s)")
    for a, b in conflicts:
        print(f"  states {a} and {b} share code "
              f"{''.join(map(str, graph.code_of(a)))} but excite "
              f"{dict(graph.excitation(a))} vs {dict(graph.excitation(b))}")

    result = modular_synthesis(graph)
    print(f"\nsynthesised with {result.state_signals} state signal(s); "
          f"{result.literals} literals\n")
    for line in equations(result.covers, result.expanded.signals):
        print(f"  {line}")

    report = verify_synthesis(result, stg)
    print(f"\ngate-level conformance: conforms={report.conforms} "
          f"({report.states_explored} closed-loop states explored)")

    print("\nstatic hazard analysis")
    tables = next_state_tables(result.expanded)
    clean = True
    for signal, cover in sorted(result.covers.items()):
        onset, _offset = tables[signal]
        hazards = static_hazards(cover, onset)
        if hazards:
            clean = False
            patches = hazard_free_patch(cover, hazards)
            print(f"  {signal}: {len(hazards)} static-1 hazard pair(s); "
                  f"{len(patches)} consensus cube(s) would remove them")
        else:
            print(f"  {signal}: hazard-free cover")
    if clean:
        print("  all covers are static-hazard-free as minimised")


if __name__ == "__main__":
    main()
