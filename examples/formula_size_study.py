"""Reproduce the paper's formula-size argument on mmu0.

Section 4: "the direct SAT formulation requires the solution of a large
SAT formula with 35,386 clauses and 1,044 variables.  In comparison, our
modular synthesis approach requires the solution of only three very
small SAT formulas, one with 85 clauses and 18 variables and the other
two with 954 clauses, 96 variables each."

This script prints the same story for the recreated mmu0 (exact counts
differ with the encoding; the ratio is the point).

Run with::

    python examples/formula_size_study.py [benchmark]
"""

import sys

from repro.bench import BENCHMARKS, load_benchmark
from repro.csc import build_csc_formula, modular_synthesis
from repro.runtime import SynthesisOptions
from repro.stategraph import build_state_graph, csc_lower_bound


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "mmu0"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}")

    graph = build_state_graph(load_benchmark(name))
    print(f"{name}: {graph.num_states} states, "
          f"{len(graph.signals)} signals\n")

    m = max(1, int(csc_lower_bound(graph)))
    direct = build_csc_formula(graph, m)
    print(f"direct (no decomposition), m={m}:")
    print(f"  ONE formula with {direct.num_clauses} clauses, "
          f"{direct.num_vars} variables")
    print(f"  (paper's mmu0: 35,386 clauses, 1,044 variables)\n")

    result = modular_synthesis(
        graph, options=SynthesisOptions(minimize=False)
    )
    sizes = result.formula_sizes()
    print(f"modular partitioning: {len(sizes)} formula(s) "
          f"across {len(result.modules)} output modules:")
    for clauses, variables in sizes:
        print(f"  {clauses} clauses, {variables} variables")
    print("  (paper's mmu0: 954 + 954 + 85 clauses)\n")

    largest = max(clauses for clauses, _ in sizes)
    print(f"size ratio (direct / largest modular): "
          f"{direct.num_clauses / largest:.1f}x "
          f"(paper: {35386 / 954:.1f}x)")


if __name__ == "__main__":
    main()
