"""Quickstart: synthesise an asynchronous controller from an STG.

The specification below is a classic minimal example of a complete state
coding violation: after ``b-`` the circuit is back at the all-zero code
it started from, yet this time it must raise ``c`` -- the code alone
cannot tell the two situations apart.  The modular partitioning method
finds the violation, inserts one state signal, and derives hazard-aware
two-level logic for every output.

Run with::

    python examples/quickstart.py
"""

from repro import load_stg, modular_synthesis
from repro.logic import equations

SPEC = """
.model quickstart
.inputs req
.outputs grant done
.graph
req+ grant+
grant+ req-
req- grant-
grant- done+
done+ done-
done- req+
.marking { <done-,req+> }
.end
"""


def main():
    stg = load_stg(SPEC)
    print(f"specification: {stg.name}")
    print(f"  inputs : {', '.join(stg.inputs)}")
    print(f"  outputs: {', '.join(stg.outputs)}")

    result = modular_synthesis(stg)

    print("\nsynthesis summary")
    print(f"  states : {result.initial_states} -> {result.final_states}")
    print(f"  signals: {result.initial_signals} -> {result.final_signals} "
          f"({result.state_signals} state signal(s) inserted)")
    print(f"  area   : {result.literals} literals")
    print(f"  time   : {result.seconds:.3f} s")

    print("\nper-output modules")
    for module in result.modules:
        keep = ", ".join(module.input_set.kept_signals) or "(none)"
        print(f"  {module.output}: input set {{{keep}}}, "
              f"{module.num_macro_states} modular states, "
              f"{module.signals_added} signal(s) added")

    print("\nnext-state equations")
    for line in equations(result.covers, result.expanded.signals):
        print(f"  {line}")


if __name__ == "__main__":
    main()
