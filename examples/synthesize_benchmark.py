"""Synthesise a Table-1 benchmark with all three methods and compare.

Usage::

    python examples/synthesize_benchmark.py [benchmark] [--budget SECONDS]

Default benchmark: ``nak-pa`` (the NAK protocol adapter).  Use
``python -m repro.bench.table1`` for the full 23-benchmark table.
"""

import argparse

from repro.baselines import lavagno_synthesis
from repro.bench import BENCHMARKS, load_benchmark
from repro.csc import BacktrackLimitError, direct_synthesis, modular_synthesis
from repro.runtime import SynthesisOptions
from repro.sat import Limits
from repro.stategraph import build_state_graph


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="nak-pa",
                        choices=sorted(BENCHMARKS))
    parser.add_argument("--budget", type=float, default=20.0,
                        help="direct-method time budget in seconds")
    args = parser.parse_args()

    info = BENCHMARKS[args.benchmark]
    stg = load_benchmark(args.benchmark)
    graph = build_state_graph(stg)
    print(f"{args.benchmark}: {graph.num_states} states, "
          f"{len(graph.signals)} signals "
          f"(paper: {info.initial_states} states, "
          f"{info.initial_signals} signals)")

    rows = []

    modular = modular_synthesis(graph)
    rows.append(("modular (paper's method)", modular.final_signals,
                 modular.final_states, modular.literals, modular.seconds))

    limits = Limits(max_backtracks=200_000, max_seconds=args.budget)
    try:
        direct = direct_synthesis(graph, options=SynthesisOptions(limits=limits))
        rows.append(("direct (Vanbekbergen)", direct.final_signals,
                     direct.final_states, direct.literals, direct.seconds))
    except BacktrackLimitError as exc:
        rows.append(("direct (Vanbekbergen)", None, None, None,
                     exc.seconds))

    lavagno = lavagno_synthesis(graph, options=SynthesisOptions(
        limits=Limits(max_backtracks=100_000, max_seconds=10.0)
    ))
    rows.append(("lavagno/moon baseline", lavagno.final_signals,
                 lavagno.final_states, lavagno.literals, lavagno.seconds))

    print(f"\n{'method':26} {'signals':>8} {'states':>7} "
          f"{'area':>5} {'time':>8}")
    for name, signals, states, area, seconds in rows:
        if signals is None:
            print(f"{name:26} {'-- SAT backtrack limit --':>21} "
                  f"{seconds:7.2f}s")
        else:
            print(f"{name:26} {signals:>8} {states:>7} {area:>5} "
                  f"{seconds:7.2f}s")

    paper = info.ours
    print(f"\npaper (SPARC-2): modular {paper.final_signals} signals, "
          f"{paper.final_states} states, {paper.area} literals, "
          f"{paper.cpu} s")


if __name__ == "__main__":
    main()
