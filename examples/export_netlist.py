"""Synthesise a benchmark and export the circuit as a BLIF netlist.

BLIF is what the SIS flow the paper built on consumed; the emitted file
feeds straight into classic technology mapping or modern readers (ABC,
Yosys).  The netlist includes the inserted state signals as ordinary
feedback gates.

Usage::

    python examples/export_netlist.py [benchmark] [output.blif]
"""

import sys

from repro.bench import BENCHMARKS, load_benchmark
from repro.csc import modular_synthesis
from repro.logic import write_synthesis_blif
from repro.stategraph import build_state_graph
from repro.verify import verify_synthesis


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "nak-pa"
    out = sys.argv[2] if len(sys.argv) > 2 else f"{name}.blif"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}")

    stg = load_benchmark(name)
    graph = build_state_graph(stg)
    result = modular_synthesis(graph)

    report = verify_synthesis(result, stg)
    if not report.conforms:
        raise SystemExit(
            f"refusing to export a non-conforming circuit: "
            f"{report.violations[:3]}"
        )

    text = write_synthesis_blif(result, stg.inputs, model=name)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"{name}: {result.final_signals} signals, "
          f"{result.literals} literals, conformance verified")
    print(f"wrote {out} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
