"""Table 1, "Lavagno and Moon et al." columns.

The sequential state-table baseline on every benchmark.  The paper's
column has two ``Internal State Error`` rows (a SIS implementation gap)
and one ``Non-Free-Choice STG`` refusal; our reimplementation handles all
inputs, so those rows simply gain measured numbers here -- ``extra_info``
records the paper's notes alongside.
"""

import pytest

from benchmarks.conftest import paper_row, run_once
from repro.baselines.lavagno import lavagno_synthesis
from repro.bench.suite import benchmark_names
from repro.sat.solver import Limits

#: Per-insertion budget keeping the big whole-graph rounds bounded.
LAVAGNO_LIMITS = Limits(max_backtracks=100_000, max_seconds=10.0)


@pytest.mark.parametrize("name", benchmark_names())
def test_lavagno(benchmark, state_graphs, name):
    graph = state_graphs(name)
    result = run_once(
        benchmark, lavagno_synthesis, graph, limits=LAVAGNO_LIMITS
    )

    info = paper_row(name)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "final_states": result.final_states,
            "final_signals": result.final_signals,
            "area_literals": result.literals,
            "insertion_rounds": len(result.rounds),
            "paper_final_signals": info.lavagno.final_signals,
            "paper_area": info.lavagno.area,
            "paper_cpu_sparc2": info.lavagno.cpu,
            "paper_note": info.lavagno.note,
        }
    )
    assert result.literals > 0
    assert result.state_signals >= 1
