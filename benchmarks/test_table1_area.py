"""The paper's aggregate area claims (Section 4).

"On average, our modular partitioning algorithm reduces the two-level
implementation area by 12% [compared to] Vanbekbergen's direct synthesis
method.  As compared to Lavagno et al.'s algorithm, we obtained an
average area improvement of 9%."

The comparison runs over the benchmarks where both methods complete
under budget (the paper's direct column likewise only has areas for the
rows that did not abort).
"""

from benchmarks.conftest import run_once
from repro.bench.runner import aggregate_area, table_rows
from repro.sat.solver import Limits

#: Benchmarks where the paper's direct method completed (rows below the
#: four aborts); keeps the area sweep fast and comparable.
COMPLETED_SUITE = [
    "sbuf-ram-write", "vbe4a", "nak-pa", "pe-rcv-ifc-fc", "ram-read-sbuf",
    "alex-nonfc", "sbuf-send-pkt2", "sbuf-send-ctl", "atod", "pa",
    "alloc-outbound", "wrdata", "fifo", "sbuf-read-ctl", "nouse",
    "vbe-ex2", "nousc-ser", "sendr-done", "vbe-ex1",
]


def test_area_vs_direct(benchmark):
    def sweep():
        rows = table_rows(
            names=COMPLETED_SUITE,
            methods=("modular", "direct"),
            direct_limits=Limits(max_backtracks=150_000, max_seconds=30.0),
        )
        return rows, aggregate_area(rows, baseline_method="direct")

    rows, delta = run_once(benchmark, sweep)
    per_benchmark = {
        name: (per["modular"].area, per["direct"].area)
        for name, per in rows.items()
        if per["direct"].completed
    }
    benchmark.extra_info.update(
        {
            "mean_area_change_vs_direct": round(delta * 100, 1),
            "paper_claim_percent": 12,
            "areas_modular_vs_direct": per_benchmark,
        }
    )
    # Shape assertion: modular must not be dramatically worse on average.
    assert delta > -0.35


def test_area_vs_lavagno(benchmark):
    def sweep():
        rows = table_rows(
            names=COMPLETED_SUITE, methods=("modular", "lavagno")
        )
        return rows, aggregate_area(rows, baseline_method="lavagno")

    rows, delta = run_once(benchmark, sweep)
    benchmark.extra_info.update(
        {
            "mean_area_change_vs_lavagno": round(delta * 100, 1),
            "paper_claim_percent": 9,
        }
    )
    assert delta > -0.35
