"""The paper's formula-size claim (Section 3.1 / Section 4).

"For STG benchmark mmu0, the direct SAT formulation requires the solution
of a very large SAT formula with 35,386 clauses [and 1,044 variables].
In comparison, our modular partitioning approach requires only three very
small formulas having 954 clauses, 954 clauses, and 85 clauses."

Absolute counts depend on the encoding; the *ratio* between the single
monolithic formula and the largest modular formula is the reproducible
shape.  The bench measures formula construction and records both sizes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.csc.assignment import Assignment
from repro.csc.input_set import determine_input_set
from repro.csc.sat_csc import build_csc_formula
from repro.csc.synthesis import modular_synthesis
from repro.stategraph.csc import csc_lower_bound
from repro.stategraph.quotient import quotient
from repro.runtime.options import SynthesisOptions

LARGE = ["mmu0", "mr0"]
ALL_LARGE = ["mmu0", "mr1", "mr0"]


def direct_formula(graph):
    m = max(1, int(csc_lower_bound(graph)))
    return build_csc_formula(graph, m)


def modular_formulas(graph):
    """(clauses, vars) of each per-output modular formula at its bound."""
    sizes = []
    empty = Assignment.empty(graph.num_states)
    for output in sorted(graph.non_inputs):
        input_set = determine_input_set(graph, output, empty)
        q = quotient(graph, input_set.hidden_signals)
        bound = csc_lower_bound(q, outputs=[output])
        if input_set.conflicts == 0:
            continue
        formula = build_csc_formula(
            q, max(1, int(bound)), outputs=[output]
        )
        sizes.append((formula.num_clauses, formula.num_vars))
    return sizes


@pytest.mark.parametrize("name", ALL_LARGE)
def test_direct_formula_size(benchmark, state_graphs, name):
    graph = state_graphs(name)
    formula = run_once(benchmark, direct_formula, graph)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "clauses": formula.num_clauses,
            "vars": formula.num_vars,
            "paper_mmu0_direct": "35386 clauses / 1044 vars",
        }
    )
    assert formula.num_clauses > 1000


@pytest.mark.parametrize("name", ALL_LARGE)
def test_modular_formula_sizes(benchmark, state_graphs, name):
    graph = state_graphs(name)
    sizes = run_once(benchmark, modular_formulas, graph)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "formula_sizes": sizes,
            "paper_mmu0_modular": "954 + 954 + 85 clauses",
        }
    )
    assert sizes, "expected at least one conflicted module"


@pytest.mark.parametrize("name", LARGE)
def test_clause_ratio_orders_of_magnitude(benchmark, state_graphs, name):
    """The headline: monolithic formula >> every modular formula solved.

    Uses the formulas the modular flow *actually* solves (state signals
    inserted by earlier modules shrink the later ones -- the sharing the
    paper's Section 3.4 relies on), against the monolithic formula the
    direct method needs at its lower bound.
    """
    graph = state_graphs(name)

    def ratio():
        direct = direct_formula(graph).num_clauses
        result = modular_synthesis(
            graph, options=SynthesisOptions(minimize=False)
        )
        largest_modular = max(
            clauses for clauses, _vars in result.formula_sizes()
        )
        return direct / largest_modular, direct, largest_modular

    value, direct, largest = run_once(benchmark, ratio)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "direct_clauses": direct,
            "largest_modular_clauses": largest,
            "ratio": round(value, 1),
            "paper_mmu0_ratio": round(35386 / 954, 1),
        }
    )
    assert value > 3, (
        f"modular formulas should be much smaller (ratio {value:.1f})"
    )
