"""The paper's in-text scaling claim.

"Compared to existing techniques, this modular partitioning method
achieves many orders of magnitude of performance improvement in terms of
computing time" -- the gap grows with specification size (mr0: 2.8 s vs
>3600 s).  This bench sweeps a parametric master-read-style family of
increasing width and measures both methods, recording where the direct
method starts hitting its budget while the modular method keeps scaling.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.generators import Par, build_g
from repro.csc.direct import direct_synthesis
from repro.csc.errors import BacktrackLimitError
from repro.csc.synthesis import modular_synthesis
from repro.sat.solver import Limits
from repro.stategraph.build import build_state_graph
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

WIDTHS = [1, 2, 3]

DIRECT_LIMITS = Limits(max_backtracks=60_000, max_seconds=10.0)


def family(width):
    """Master-read-style controller with ``width`` data-path handshakes.

    Half-handshake branches keep per-branch codes monotone; the single
    completion-pulse branch carries the CSC conflict, so the instance
    family grows in states (~3^width) while the conflict structure stays
    fixed -- isolating the scaling behaviour of the two methods.
    """
    branches = [
        [f"d{i}+", f"q{i}+"] for i in range(1, width + 1)
    ]
    branches.append(["w+", "w-", "w+"])
    falling = [[f"d{i}-", f"q{i}-"] for i in range(1, width + 1)]
    falling.append(["w-"])
    text = build_g(
        f"family-{width}",
        inputs=["r"] + [f"d{i}" for i in range(1, width + 1)],
        outputs=["a", "e", "w"] + [f"q{i}" for i in range(1, width + 1)],
        cycle=(
            ["r+", Par(*branches), "a+", "r-", Par(*falling), "a-",
             "e+", "e-"]
        ),
    )
    return build_state_graph(parse_g(text))


@pytest.fixture(scope="module")
def graphs():
    return {width: family(width) for width in WIDTHS}


@pytest.mark.parametrize("width", WIDTHS)
def test_modular_scaling(benchmark, graphs, width):
    graph = graphs[width]
    result = run_once(
        benchmark, modular_synthesis, graph,
        options=SynthesisOptions(minimize=False),
    )
    benchmark.extra_info.update(
        {
            "width": width,
            "states": graph.num_states,
            "final_signals": result.final_signals,
        }
    )
    assert result.state_signals >= 1


@pytest.mark.parametrize("width", WIDTHS)
def test_direct_scaling(benchmark, graphs, width):
    graph = graphs[width]

    def flow():
        try:
            return direct_synthesis(
                graph,
                options=SynthesisOptions(
                    limits=DIRECT_LIMITS, minimize=False, engine="dpll"
                ),
            )
        except BacktrackLimitError as exc:
            return exc

    result = run_once(benchmark, flow)
    aborted = isinstance(result, BacktrackLimitError)
    benchmark.extra_info.update(
        {
            "width": width,
            "states": graph.num_states,
            "aborted": aborted,
        }
    )
    if width == 1:
        assert not aborted, "direct method should manage the small instance"
