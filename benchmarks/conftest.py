"""Shared configuration for the benchmark harness.

Every bench runs each measurement exactly once (``rounds=1``): the
workloads are whole synthesis flows taking milliseconds to tens of
seconds, so statistical repetition would multiply the suite's runtime
for little insight.  Reproduction context (paper numbers, formula sizes,
abort notes) is attached to ``benchmark.extra_info`` and lands in the
pytest-benchmark JSON output.
"""

import pytest

from repro.bench.suite import BENCHMARKS
from repro.stategraph.build import build_state_graph
from repro.bench.suite import load_benchmark


def run_once(benchmark, fn, *args, **kwargs):
    """Measure ``fn`` with a single round/iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture(scope="session")
def state_graphs():
    """Session cache of benchmark state graphs (construction excluded
    from method timings, mirroring the paper's setup where the state
    graph is an input to the compared algorithms)."""
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = build_state_graph(load_benchmark(name))
        return cache[name]

    return get


def paper_row(name):
    return BENCHMARKS[name]
