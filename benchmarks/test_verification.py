"""Gate-level verification of every synthesised benchmark.

The paper argues partitioning "simplifies the circuit verification
process" (Section 3.1).  This bench closes the loop on the claim's
substance: every modular synthesis result is model-checked as a gate-level
circuit against its own STG environment under the speed-independent delay
model -- no unexpected outputs, no output hazards, no missing outputs, no
deadlocks.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.suite import benchmark_names, load_benchmark
from repro.csc.synthesis import modular_synthesis
from repro.verify import verify_synthesis


@pytest.mark.parametrize("name", benchmark_names())
def test_synthesised_circuit_conforms(benchmark, state_graphs, name):
    stg = load_benchmark(name)
    graph = state_graphs(name)
    result = modular_synthesis(graph)

    report = run_once(benchmark, verify_synthesis, result, stg)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "closed_loop_states": report.states_explored,
            "violations": len(report.violations),
            "deadlocks": len(report.deadlocks),
        }
    )
    assert report.conforms, (report.violations, report.deadlocks)
