"""Table 1, "Vanbekbergen et al. (No Decomposition)" columns.

The monolithic SAT flow under the paper's abort regime: a fixed
backtrack/time budget.  The large benchmarks exhaust it (the paper's
"SAT Backtrack Limit" rows); the small ones complete.
"""

import pytest

from benchmarks.conftest import paper_row, run_once
from repro.bench.suite import benchmark_names
from repro.csc.direct import direct_synthesis
from repro.csc.errors import BacktrackLimitError
from repro.sat.solver import Limits
from repro.runtime.options import SynthesisOptions

#: The stand-in for the paper's backtrack limit / 3600 s abort.
DIRECT_LIMITS = Limits(max_backtracks=150_000, max_seconds=30.0)

#: The historical Vanbekbergen implementation ran on the SIS
#: branch-and-bound SAT program; the era-faithful engine for this column
#: is therefore the chronological "dpll" solver.  The engine ablation
#: bench (test_ablation.py) additionally measures the direct method under
#: the modern CDCL engine.
DIRECT_ENGINE = "dpll"


@pytest.mark.parametrize("name", benchmark_names())
def test_direct(benchmark, state_graphs, name):
    graph = state_graphs(name)

    def flow():
        try:
            return direct_synthesis(
                graph,
                options=SynthesisOptions(
                    limits=DIRECT_LIMITS, engine=DIRECT_ENGINE
                ),
            )
        except BacktrackLimitError as exc:
            return exc

    result = run_once(benchmark, flow)
    info = paper_row(name)
    aborted = isinstance(result, BacktrackLimitError)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "aborted": aborted,
            "paper_aborted": not info.vanbekbergen.completed,
            "paper_area": info.vanbekbergen.area,
            "paper_cpu_sparc2": info.vanbekbergen.cpu,
        }
    )
    if not aborted:
        benchmark.extra_info.update(
            {
                "final_states": result.final_states,
                "final_signals": result.final_signals,
                "area_literals": result.literals,
            }
        )
        assert result.literals > 0
    # Paper shape: the large STGs abort, the small half completes.  The
    # exact crossover depends on the solver's luck on mid-size instances
    # (vbe4a sits on the boundary for the chronological engine), so the
    # hard assertion covers the benchmarks safely below it.
    if info.vanbekbergen.completed and info.initial_states <= 46:
        assert not aborted, f"direct method should complete on {name}"
