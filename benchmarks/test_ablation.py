"""Ablation benches for the design choices DESIGN.md calls out.

* SAT engine: paper-era chronological DPLL vs modern CDCL vs the default
  hybrid vs the follow-up paper's area-optimising BDD engine, for both
  methods.
* Assignment polishing: area with and without the excitation-shrinking
  post-pass.
* Output processing order: smallest-module-first heuristic vs naive
  alphabetical order.
* Implementation style: single complex gate per signal vs generalised
  C-element (SET/RESET networks).
"""

import pytest

from benchmarks.conftest import run_once
from repro.csc.direct import direct_synthesis
from repro.csc.errors import BacktrackLimitError, SynthesisError
from repro.csc.synthesis import modular_synthesis
from repro.sat.solver import Limits
from repro.runtime.options import SynthesisOptions

ENGINES = ["dpll", "cdcl", "hybrid", "bdd"]
MEDIUM = "mmu1"
LARGE = "mmu0"

ABLATION_LIMITS = Limits(max_backtracks=100_000, max_seconds=10.0)


@pytest.mark.parametrize("engine", ENGINES)
def test_modular_engine(benchmark, state_graphs, engine):
    graph = state_graphs(LARGE)

    def flow():
        try:
            return modular_synthesis(
                graph,
                options=SynthesisOptions(minimize=False, engine=engine),
            )
        except SynthesisError as exc:
            # The paper-era chronological solver can fail to decide the
            # harder modular instances within budget -- itself a finding.
            return exc

    result = run_once(benchmark, flow)
    failed = isinstance(result, SynthesisError)
    benchmark.extra_info.update(
        {
            "engine": engine,
            "failed": failed,
            "final_signals": None if failed else result.final_signals,
        }
    )
    if engine != "dpll":
        assert not failed


@pytest.mark.parametrize("engine", ENGINES)
def test_direct_engine(benchmark, state_graphs, engine):
    graph = state_graphs(LARGE)

    def flow():
        try:
            return direct_synthesis(
                graph,
                options=SynthesisOptions(
                    limits=ABLATION_LIMITS, minimize=False, engine=engine
                ),
            )
        except BacktrackLimitError as exc:
            return exc

    result = run_once(benchmark, flow)
    benchmark.extra_info.update(
        {
            "engine": engine,
            "aborted": isinstance(result, BacktrackLimitError),
        }
    )


@pytest.mark.parametrize("polish", [False, True], ids=["raw", "polished"])
def test_polish_ablation(benchmark, state_graphs, polish):
    graph = state_graphs(MEDIUM)
    result = run_once(
        benchmark, modular_synthesis, graph,
        options=SynthesisOptions(polish=polish),
    )
    benchmark.extra_info.update(
        {
            "polish": polish,
            "final_states": result.final_states,
            "area_literals": result.literals,
        }
    )
    assert result.literals > 0


@pytest.mark.parametrize(
    "style", ["complex-gate", "c-element"]
)
def test_implementation_style(benchmark, state_graphs, style):
    from repro.logic.celement import synthesize_celements
    from repro.logic.extract import synthesize_logic

    graph = state_graphs(MEDIUM)
    result = modular_synthesis(
        graph, options=SynthesisOptions(minimize=False)
    )

    def realise():
        if style == "complex-gate":
            _covers, literals = synthesize_logic(result.expanded)
        else:
            _impls, literals = synthesize_celements(result.expanded)
        return literals

    literals = run_once(benchmark, realise)
    benchmark.extra_info.update({"style": style, "literals": literals})
    assert literals > 0


@pytest.mark.parametrize(
    "order", ["heuristic", "alphabetical"], ids=["heuristic", "alpha"]
)
def test_output_order_ablation(benchmark, state_graphs, order):
    graph = state_graphs(MEDIUM)
    explicit = sorted(graph.non_inputs) if order == "alphabetical" else None
    result = run_once(
        benchmark, modular_synthesis, graph, minimize=False,
        output_order=explicit,
    )
    benchmark.extra_info.update(
        {"order": order, "final_signals": result.final_signals}
    )
    assert result.state_signals >= 1
