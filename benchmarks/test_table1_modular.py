"""Table 1, "Our Method (Decomposition)" columns.

One bench per benchmark STG: the full modular partitioning flow (input
set derivation, modular SAT, propagation, expansion, two-level
minimisation).  ``extra_info`` records the measured final states/signals/
area next to the paper's row.
"""

import pytest

from benchmarks.conftest import paper_row, run_once
from repro.bench.suite import benchmark_names
from repro.csc.synthesis import modular_synthesis


@pytest.mark.parametrize("name", benchmark_names())
def test_modular(benchmark, state_graphs, name):
    graph = state_graphs(name)
    result = run_once(benchmark, modular_synthesis, graph)

    info = paper_row(name)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "initial_states": result.initial_states,
            "initial_signals": result.initial_signals,
            "final_states": result.final_states,
            "final_signals": result.final_signals,
            "area_literals": result.literals,
            "paper_final_states": info.ours.final_states,
            "paper_final_signals": info.ours.final_signals,
            "paper_area": info.ours.area,
            "paper_cpu_sparc2": info.ours.cpu,
            "num_modules": len(result.modules),
            "formula_sizes": result.formula_sizes(),
        }
    )
    # Reproduction shape assertions: CSC solved, state signals inserted.
    assert result.state_signals >= 1
    assert result.final_states >= result.initial_states
    assert result.literals > 0
